//! Newick tree serialization.
//!
//! Supports the subset of Newick used by phylogenetic inference tools:
//! rooted binary trees with taxon labels on tips and branch lengths on every
//! non-root edge, e.g. `((A:0.1,B:0.2):0.05,C:0.3);`.

use std::collections::HashMap;

use crate::tree::{Node, NodeId, Tree};

/// Error from parsing a Newick string.
#[derive(Debug, Clone, PartialEq)]
pub struct NewickError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input where the failure was noticed.
    pub position: usize,
}

impl std::fmt::Display for NewickError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "newick parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for NewickError {}

/// Serialize a tree to Newick, using the provided taxon names
/// (`names[i]` for taxon `i`).
pub fn to_newick(tree: &Tree, names: &[String]) -> String {
    let mut s = String::new();
    write_node(tree, tree.root(), names, true, &mut s);
    s.push(';');
    s
}

fn write_node(tree: &Tree, id: NodeId, names: &[String], is_root: bool, out: &mut String) {
    let node = tree.node(id);
    if let Some(t) = node.taxon {
        out.push_str(&names[t]);
    } else {
        out.push('(');
        for (i, &c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_node(tree, c, names, false, out);
        }
        out.push(')');
    }
    if !is_root {
        out.push_str(&format!(":{}", node.branch_length));
    }
}

/// Parse a rooted binary Newick tree. Returns the tree plus the taxon names
/// in taxon-index order.
pub fn from_newick(input: &str) -> Result<(Tree, Vec<String>), NewickError> {
    let mut parser = Parser {
        bytes: input.trim().as_bytes(),
        pos: 0,
    };
    let raw = parser.parse_subtree()?;
    parser.skip_ws();
    if parser.peek() == Some(b';') {
        parser.pos += 1;
    }
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after tree"));
    }
    build_tree(raw, &mut parser)
}

/// Intermediate parse tree.
enum RawNode {
    Tip { name: String, branch: f64 },
    Internal { children: Vec<RawNode>, branch: f64 },
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> NewickError {
        NewickError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_subtree(&mut self) -> Result<RawNode, NewickError> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = vec![self.parse_subtree()?];
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b',') => {
                        self.pos += 1;
                        children.push(self.parse_subtree()?);
                    }
                    Some(b')') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ')'")),
                }
            }
            // Optional internal label is skipped (tools emit support values).
            self.parse_label();
            let branch = self.parse_branch()?;
            Ok(RawNode::Internal { children, branch })
        } else {
            let name = self.parse_label();
            if name.is_empty() {
                return Err(self.err("expected taxon label"));
            }
            let branch = self.parse_branch()?;
            Ok(RawNode::Tip { name, branch })
        }
    }

    fn parse_label(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'(' | b')' | b',' | b':' | b';') || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn parse_branch(&mut self) -> Result<f64, NewickError> {
        self.skip_ws();
        if self.peek() != Some(b':') {
            return Ok(0.0);
        }
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'.' | b'-' | b'+' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("invalid branch length"))
    }
}

fn build_tree(raw: RawNode, parser: &mut Parser) -> Result<(Tree, Vec<String>), NewickError> {
    // First pass: collect tip names in encounter order.
    let mut names = Vec::new();
    collect_names(&raw, &mut names);
    if names.len() < 2 {
        return Err(parser.err("tree must have at least two taxa"));
    }
    let name_index: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    if name_index.len() != names.len() {
        return Err(parser.err("duplicate taxon labels"));
    }

    let n = names.len();
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            parent: None,
            children: vec![],
            branch_length: 0.0,
            taxon: Some(i),
        })
        .collect();
    let root = attach(&raw, &mut nodes, &name_index, parser)?;
    nodes[root].branch_length = 0.0;
    Ok((Tree::from_nodes(nodes, root, n), names))
}

fn collect_names(raw: &RawNode, out: &mut Vec<String>) {
    match raw {
        RawNode::Tip { name, .. } => out.push(name.clone()),
        RawNode::Internal { children, .. } => {
            for c in children {
                collect_names(c, out);
            }
        }
    }
}

fn attach(
    raw: &RawNode,
    nodes: &mut Vec<Node>,
    names: &HashMap<&str, usize>,
    parser: &mut Parser,
) -> Result<NodeId, NewickError> {
    match raw {
        RawNode::Tip { name, branch } => {
            let id = names[name.as_str()];
            nodes[id].branch_length = *branch;
            Ok(id)
        }
        RawNode::Internal { children, branch } => {
            if children.len() != 2 {
                return Err(parser.err("only strictly binary trees are supported"));
            }
            let c0 = attach(&children[0], nodes, names, parser)?;
            let c1 = attach(&children[1], nodes, names, parser)?;
            let id = nodes.len();
            nodes.push(Node {
                parent: None,
                children: vec![c0, c1],
                branch_length: *branch,
                taxon: None,
            });
            nodes[c0].parent = Some(id);
            nodes[c1].parent = Some(id);
            Ok(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let input = "((A:0.1,B:0.2):0.05,C:0.3);";
        let (tree, names) = from_newick(input).unwrap();
        assert_eq!(names, vec!["A", "B", "C"]);
        assert_eq!(tree.taxon_count(), 3);
        let out = to_newick(&tree, &names);
        let (tree2, names2) = from_newick(&out).unwrap();
        assert_eq!(names, names2);
        assert_eq!(tree.tree_length(), tree2.tree_length());
    }

    #[test]
    fn branch_lengths_parsed() {
        let (tree, names) = from_newick("(A:0.5,B:1.5);").unwrap();
        let a = names.iter().position(|n| n == "A").unwrap();
        let b = names.iter().position(|n| n == "B").unwrap();
        assert!((tree.node(a).branch_length - 0.5).abs() < 1e-12);
        assert!((tree.node(b).branch_length - 1.5).abs() < 1e-12);
    }

    #[test]
    fn missing_branch_defaults_to_zero() {
        let (tree, names) = from_newick("(A,B);").unwrap();
        assert_eq!(
            tree.node(names.iter().position(|n| n == "A").unwrap())
                .branch_length,
            0.0
        );
    }

    #[test]
    fn scientific_notation_branch() {
        let (tree, _) = from_newick("(A:1e-3,B:2.5E-2);").unwrap();
        assert!((tree.node(0).branch_length - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn rejects_nonbinary() {
        assert!(from_newick("(A:1,B:1,C:1);").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(from_newick("(A:1,A:1);").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_newick("not a tree").is_err());
        assert!(from_newick("((A:1,B:2):0.1,C:3); extra").is_err());
    }

    #[test]
    fn random_tree_roundtrips() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(5);
        let t = crate::tree::Tree::random(17, 0.1, &mut rng);
        let names: Vec<String> = (0..17).map(|i| format!("taxon{i}")).collect();
        let nwk = to_newick(&t, &names);
        let (t2, names2) = from_newick(&nwk).unwrap();
        assert_eq!(t2.taxon_count(), 17);
        let reordered = to_newick(&t2, &names2);
        assert_eq!(nwk, reordered, "serialization is stable");
    }
}
