//! Clade bitsets, Robinson–Foulds distance, and consensus support.
//!
//! The posterior-summary machinery MrBayes-style samplers need: every
//! internal edge of a rooted binary tree defines a *clade* (the set of taxa
//! below it); topologies are compared by their clade sets (Robinson–Foulds),
//! and a posterior sample of trees is summarized by per-clade support
//! frequencies (the numbers on published phylogenies).

use std::collections::HashMap;

use crate::tree::{NodeId, Tree};

/// A set of taxa encoded as a bitset (taxon `i` ↔ bit `i`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clade(Vec<u64>);

impl Clade {
    fn new(taxa: usize) -> Self {
        Clade(vec![0; taxa.div_ceil(64)])
    }

    fn set(&mut self, taxon: usize) {
        self.0[taxon / 64] |= 1 << (taxon % 64);
    }

    fn union_with(&mut self, other: &Clade) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    /// True if taxon `i` belongs to the clade.
    pub fn contains(&self, taxon: usize) -> bool {
        self.0[taxon / 64] & (1 << (taxon % 64)) != 0
    }

    /// Number of taxa in the clade.
    pub fn size(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Taxon indices in the clade, ascending.
    pub fn members(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.size());
        for (w, &word) in self.0.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// The *non-trivial* clades of a rooted binary tree: one per internal node
/// except the root (whose clade is all taxa) — `n − 2` clades for `n` taxa.
pub fn clades(tree: &Tree) -> Vec<Clade> {
    let n = tree.taxon_count();
    let mut per_node: Vec<Clade> = (0..tree.node_count()).map(|_| Clade::new(n)).collect();
    for tip in 0..n {
        per_node[tip].set(tip);
    }
    let mut out = Vec::with_capacity(n.saturating_sub(2));
    for id in tree.postorder_internal() {
        let children: Vec<NodeId> = tree.node(id).children.clone();
        let mut clade = Clade::new(n);
        for c in children {
            let child_clade = per_node[c].clone();
            clade.union_with(&child_clade);
        }
        per_node[id] = clade.clone();
        if id != tree.root() {
            out.push(clade);
        }
    }
    out
}

/// Robinson–Foulds distance between two trees over the same taxa: the size
/// of the symmetric difference of their clade sets. Identical topologies
/// give 0; maximally different `n`-taxon binary trees give `2(n − 2)`.
pub fn robinson_foulds(a: &Tree, b: &Tree) -> usize {
    assert_eq!(
        a.taxon_count(),
        b.taxon_count(),
        "trees must share a taxon set"
    );
    let ca: std::collections::HashSet<Clade> = clades(a).into_iter().collect();
    let cb: std::collections::HashSet<Clade> = clades(b).into_iter().collect();
    ca.symmetric_difference(&cb).count()
}

/// Per-clade support from a sample of trees: fraction of trees containing
/// each observed clade, sorted by decreasing support.
pub fn clade_supports(trees: &[Tree]) -> Vec<(Clade, f64)> {
    assert!(!trees.is_empty());
    let mut counts: HashMap<Clade, usize> = HashMap::new();
    for t in trees {
        for c in clades(t) {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    let n = trees.len() as f64;
    let mut out: Vec<(Clade, f64)> = counts.into_iter().map(|(c, k)| (c, k as f64 / n)).collect();
    out.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then(x.0.cmp(&y.0)));
    out
}

/// The majority-rule consensus clades: support strictly greater than 1/2.
/// Such clades are guaranteed pairwise compatible.
pub fn majority_rule(trees: &[Tree]) -> Vec<(Clade, f64)> {
    clade_supports(trees)
        .into_iter()
        .filter(|(_, s)| *s > 0.5)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ladder_clades_are_nested_prefixes() {
        let t = Tree::ladder(5, 0.1);
        let cs = clades(&t);
        assert_eq!(cs.len(), 3, "n-2 non-trivial clades");
        let sizes: Vec<usize> = cs.iter().map(Clade::size).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 4]);
        // The 2-clade is {t0, t1}.
        let two = cs.iter().find(|c| c.size() == 2).unwrap();
        assert_eq!(two.members(), vec![0, 1]);
    }

    #[test]
    fn rf_zero_for_identical_topologies() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Tree::random(10, 0.1, &mut rng);
        let mut u = t.clone();
        // Branch lengths don't matter for RF.
        u.node_mut(0).branch_length *= 5.0;
        assert_eq!(robinson_foulds(&t, &u), 0);
    }

    #[test]
    fn rf_detects_nni() {
        let mut rng = SmallRng::seed_from_u64(2);
        let t = Tree::random(12, 0.1, &mut rng);
        let mut u = t.clone();
        let cands = u.nni_candidates();
        let v = cands[rng.random_range(0..cands.len())];
        u.nni(v, &mut rng);
        let d = robinson_foulds(&t, &u);
        // One NNI changes at most two clades (usually exactly one each way).
        assert!((1..=4).contains(&d), "RF after one NNI: {d}");
    }

    #[test]
    fn rf_symmetric_and_triangle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let a = Tree::random(9, 0.1, &mut rng);
        let b = Tree::random(9, 0.1, &mut rng);
        let c = Tree::random(9, 0.1, &mut rng);
        assert_eq!(robinson_foulds(&a, &b), robinson_foulds(&b, &a));
        assert!(robinson_foulds(&a, &c) <= robinson_foulds(&a, &b) + robinson_foulds(&b, &c));
    }

    #[test]
    fn rf_bounded_by_two_n_minus_four() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..20 {
            let a = Tree::random(8, 0.1, &mut rng);
            let b = Tree::random(8, 0.1, &mut rng);
            assert!(robinson_foulds(&a, &b) <= 2 * (8 - 2));
        }
    }

    #[test]
    fn unanimous_sample_gives_full_support() {
        let t = Tree::ladder(6, 0.1);
        let sample = vec![t.clone(), t.clone(), t];
        let support = clade_supports(&sample);
        assert_eq!(support.len(), 4);
        assert!(support.iter().all(|(_, s)| (*s - 1.0).abs() < 1e-12));
        assert_eq!(majority_rule(&sample).len(), 4);
    }

    #[test]
    fn mixed_sample_majority() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a = Tree::ladder(6, 0.1);
        let mut b = a.clone();
        let cands = b.nni_candidates();
        b.nni(cands[0], &mut rng);
        // 3 copies of a, 1 of b: a's clades have support ≥ 0.75.
        let sample = vec![a.clone(), a.clone(), a.clone(), b];
        let maj = majority_rule(&sample);
        for (_, s) in &maj {
            assert!(*s > 0.5);
        }
        // a's full clade set must be in the majority (support 0.75 or 1.0).
        assert!(maj.len() >= 3);
    }
}
