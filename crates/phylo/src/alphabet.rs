//! Character alphabets: nucleotide (4 states), amino acid (20 states), and
//! codon (61 sense codons of the universal genetic code).
//!
//! The state count `s` is the key performance parameter of the likelihood
//! kernels — O(p·s²·n) — so each alphabet carries its state count and the
//! encode/decode tables the data layer needs.

/// The three data types the paper benchmarks (nucleotide / amino acid / codon).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Alphabet {
    /// DNA nucleotides: A, C, G, T. 4 states.
    Dna,
    /// The 20 standard amino acids. 20 states.
    AminoAcid,
    /// The 61 sense codons of the universal genetic code (64 − 3 stops).
    Codon,
}

/// Sentinel used for gaps/ambiguities in compact state storage; kernels treat
/// it as "missing" (partial likelihood 1 for all states), matching BEAGLE.
pub const GAP_STATE: u32 = u32::MAX;

const DNA_CHARS: [u8; 4] = [b'A', b'C', b'G', b'T'];
const AA_CHARS: [u8; 20] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V',
];

impl Alphabet {
    /// Number of character states (4, 20, or 61).
    pub fn state_count(self) -> usize {
        match self {
            Alphabet::Dna => 4,
            Alphabet::AminoAcid => 20,
            Alphabet::Codon => 61,
        }
    }

    /// Encode one symbol into its state index, or `GAP_STATE` for anything
    /// unrecognized (gaps, ambiguity codes). For codons the symbol is a
    /// 3-letter nucleotide triplet.
    pub fn encode(self, symbol: &[u8]) -> u32 {
        match self {
            Alphabet::Dna => {
                debug_assert_eq!(symbol.len(), 1);
                match symbol[0].to_ascii_uppercase() {
                    b'A' => 0,
                    b'C' => 1,
                    b'G' => 2,
                    b'T' | b'U' => 3,
                    _ => GAP_STATE,
                }
            }
            Alphabet::AminoAcid => {
                debug_assert_eq!(symbol.len(), 1);
                let c = symbol[0].to_ascii_uppercase();
                AA_CHARS
                    .iter()
                    .position(|&a| a == c)
                    .map(|i| i as u32)
                    .unwrap_or(GAP_STATE)
            }
            Alphabet::Codon => {
                debug_assert_eq!(symbol.len(), 3);
                let mut idx = 0usize;
                for &b in symbol {
                    let n = Alphabet::Dna.encode(&[b]);
                    if n == GAP_STATE {
                        return GAP_STATE;
                    }
                    idx = idx * 4 + n as usize;
                }
                codon_tables().triplet_to_state[idx]
            }
        }
    }

    /// Decode a state index back into its text symbol.
    pub fn decode(self, state: u32) -> String {
        if state == GAP_STATE {
            return match self {
                Alphabet::Codon => "---".to_string(),
                _ => "-".to_string(),
            };
        }
        match self {
            Alphabet::Dna => (DNA_CHARS[state as usize] as char).to_string(),
            Alphabet::AminoAcid => (AA_CHARS[state as usize] as char).to_string(),
            Alphabet::Codon => {
                let trip = codon_tables().state_to_triplet[state as usize];
                let mut s = String::with_capacity(3);
                for k in [trip / 16, (trip / 4) % 4, trip % 4] {
                    s.push(DNA_CHARS[k] as char);
                }
                s
            }
        }
    }

    /// Number of alignment columns one character occupies (3 for codons).
    pub fn symbol_width(self) -> usize {
        match self {
            Alphabet::Codon => 3,
            _ => 1,
        }
    }
}

/// Sense-codon bookkeeping for the universal genetic code.
pub struct CodonTables {
    /// Map 0..64 triplet index (A=0,C=1,G=2,T=3 base-4) → sense-codon state
    /// index 0..61, or `GAP_STATE` for the three stop codons.
    pub triplet_to_state: [u32; 64],
    /// Map sense-codon state 0..61 → triplet index 0..64.
    pub state_to_triplet: [usize; 61],
    /// Amino acid (0..20, indices into the amino-acid alphabet) encoded by
    /// each sense codon; used to classify synonymous vs nonsynonymous changes.
    pub amino_acid: [u32; 61],
}

/// Universal genetic code as a 64-char table in TCAG-free AC GT order:
/// index = 16·b1 + 4·b2 + b3 with A=0, C=1, G=2, T=3. '*' marks stops.
const GENETIC_CODE: &[u8; 64] = b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVV*Y*YSSSS*CWCLFLF";

/// Lazily built codon tables (built once; cheap and lock-free afterwards).
pub fn codon_tables() -> &'static CodonTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<CodonTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut triplet_to_state = [GAP_STATE; 64];
        let mut state_to_triplet = [0usize; 61];
        let mut amino_acid = [0u32; 61];
        let mut next = 0u32;
        for t in 0..64 {
            let aa = GENETIC_CODE[t];
            if aa == b'*' {
                continue; // stop codon: excluded from the state space
            }
            triplet_to_state[t] = next;
            state_to_triplet[next as usize] = t;
            amino_acid[next as usize] = Alphabet::AminoAcid.encode(&[aa]);
            next += 1;
        }
        assert_eq!(next, 61, "universal code must yield 61 sense codons");
        CodonTables {
            triplet_to_state,
            state_to_triplet,
            amino_acid,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_roundtrip() {
        for s in 0..4u32 {
            let sym = Alphabet::Dna.decode(s);
            assert_eq!(Alphabet::Dna.encode(sym.as_bytes()), s);
        }
        assert_eq!(Alphabet::Dna.encode(b"N"), GAP_STATE);
        assert_eq!(Alphabet::Dna.encode(b"-"), GAP_STATE);
        assert_eq!(Alphabet::Dna.encode(b"u"), 3, "RNA U maps to T");
    }

    #[test]
    fn amino_acid_roundtrip() {
        for s in 0..20u32 {
            let sym = Alphabet::AminoAcid.decode(s);
            assert_eq!(Alphabet::AminoAcid.encode(sym.as_bytes()), s);
        }
        assert_eq!(Alphabet::AminoAcid.encode(b"X"), GAP_STATE);
    }

    #[test]
    fn codon_state_space_is_61() {
        assert_eq!(Alphabet::Codon.state_count(), 61);
        let t = codon_tables();
        let stops = t
            .triplet_to_state
            .iter()
            .filter(|&&s| s == GAP_STATE)
            .count();
        assert_eq!(stops, 3, "universal code has exactly 3 stop codons");
    }

    #[test]
    fn stop_codons_are_not_states() {
        for stop in [b"TAA".as_ref(), b"TAG".as_ref(), b"TGA".as_ref()] {
            assert_eq!(Alphabet::Codon.encode(stop), GAP_STATE, "{:?}", stop);
        }
    }

    #[test]
    fn codon_roundtrip() {
        for s in 0..61u32 {
            let sym = Alphabet::Codon.decode(s);
            assert_eq!(Alphabet::Codon.encode(sym.as_bytes()), s, "codon {sym}");
        }
    }

    #[test]
    fn known_codon_translations() {
        let t = codon_tables();
        // ATG -> Met (M), TGG -> Trp (W), AAA -> Lys (K)
        for (trip, aa) in [(b"ATG", b'M'), (b"TGG", b'W'), (b"AAA", b'K')] {
            let st = Alphabet::Codon.encode(trip);
            assert_ne!(st, GAP_STATE);
            assert_eq!(t.amino_acid[st as usize], Alphabet::AminoAcid.encode(&[aa]));
        }
    }

    #[test]
    fn state_counts() {
        assert_eq!(Alphabet::Dna.state_count(), 4);
        assert_eq!(Alphabet::AminoAcid.state_count(), 20);
        assert_eq!(Alphabet::Codon.state_count(), 61);
    }
}
