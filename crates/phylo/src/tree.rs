//! Rooted binary phylogenetic trees.
//!
//! BEAGLE itself deliberately has no tree type — the client owns the tree and
//! sends the library a flat list of partial-likelihood *operations* in
//! post-order. This module provides that client-side tree: an arena of nodes
//! with branch lengths, traversal helpers, the operation schedule builder,
//! and the topology moves the MCMC application needs (NNI, branch scaling).

use rand::Rng;

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// A node in a rooted binary tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Parent node, or `None` for the root.
    pub parent: Option<NodeId>,
    /// Children; empty for tips, exactly two for internal nodes.
    pub children: Vec<NodeId>,
    /// Length of the branch *above* this node (to its parent), in expected
    /// substitutions per site. Unused (0) for the root.
    pub branch_length: f64,
    /// Taxon index for tips (`None` for internal nodes).
    pub taxon: Option<usize>,
}

/// A rooted, strictly bifurcating tree over `n` taxa.
///
/// Invariants: node ids `0..n` are the tips (tip `i` has `taxon == Some(i)`),
/// ids `n..2n-1` are internal, and the root is a valid internal node (or tip 0
/// for a single-taxon tree).
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
    root: NodeId,
    taxon_count: usize,
}

impl Tree {
    /// Build from a raw arena. Validates the binary-tree invariants.
    pub fn from_nodes(nodes: Vec<Node>, root: NodeId, taxon_count: usize) -> Self {
        let t = Self {
            nodes,
            root,
            taxon_count,
        };
        t.validate();
        t
    }

    /// Generate a random topology by sequential random joins (a Yule-ish
    /// coalescent shape), with branch lengths drawn Exp(1/`mean_branch`).
    pub fn random<R: Rng>(taxon_count: usize, mean_branch: f64, rng: &mut R) -> Self {
        assert!(taxon_count >= 2, "need at least two taxa");
        let mut nodes: Vec<Node> = (0..taxon_count)
            .map(|i| Node {
                parent: None,
                children: Vec::new(),
                branch_length: sample_exp(mean_branch, rng),
                taxon: Some(i),
            })
            .collect();
        // Active roots of the growing forest.
        let mut active: Vec<NodeId> = (0..taxon_count).collect();
        while active.len() > 1 {
            let i = rng.random_range(0..active.len());
            let a = active.swap_remove(i);
            let j = rng.random_range(0..active.len());
            let b = active.swap_remove(j);
            let id = nodes.len();
            nodes.push(Node {
                parent: None,
                children: vec![a, b],
                branch_length: sample_exp(mean_branch, rng),
                taxon: None,
            });
            nodes[a].parent = Some(id);
            nodes[b].parent = Some(id);
            active.push(id);
        }
        let root = active[0];
        nodes[root].branch_length = 0.0;
        Self::from_nodes(nodes, root, taxon_count)
    }

    /// A fixed "ladder" (caterpillar) topology, handy for deterministic tests:
    /// ((((t0,t1),t2),t3)...). All branch lengths set to `branch`.
    pub fn ladder(taxon_count: usize, branch: f64) -> Self {
        assert!(taxon_count >= 2);
        let mut nodes: Vec<Node> = (0..taxon_count)
            .map(|i| Node {
                parent: None,
                children: vec![],
                branch_length: branch,
                taxon: Some(i),
            })
            .collect();
        let mut prev = 0usize;
        for t in 1..taxon_count {
            let id = nodes.len();
            nodes.push(Node {
                parent: None,
                children: vec![prev, t],
                branch_length: branch,
                taxon: None,
            });
            nodes[prev].parent = Some(id);
            nodes[t].parent = Some(id);
            prev = id;
        }
        nodes[prev].branch_length = 0.0;
        Self::from_nodes(nodes, prev, taxon_count)
    }

    fn validate(&self) {
        let n = self.taxon_count;
        assert_eq!(
            self.nodes.len(),
            2 * n - 1,
            "binary tree over {n} taxa has 2n-1 nodes"
        );
        for (id, node) in self.nodes.iter().enumerate() {
            if let Some(t) = node.taxon {
                assert_eq!(id, t, "tip ids must equal taxon indices");
                assert!(node.children.is_empty(), "tips have no children");
            } else {
                assert_eq!(node.children.len(), 2, "internal nodes are binary");
            }
            for &c in &node.children {
                assert_eq!(self.nodes[c].parent, Some(id), "parent pointers consistent");
            }
        }
        assert!(self.nodes[self.root].parent.is_none(), "root has no parent");
    }

    /// Number of taxa (tips).
    pub fn taxon_count(&self) -> usize {
        self.taxon_count
    }

    /// Total number of nodes (`2n − 1`).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Borrow node `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Mutably borrow node `id` (used by proposal moves).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id]
    }

    /// True if `id` is a tip.
    pub fn is_tip(&self, id: NodeId) -> bool {
        self.nodes[id].taxon.is_some()
    }

    /// Ids of all internal nodes in post-order (children before parents),
    /// ending with the root.
    pub fn postorder_internal(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.taxon_count - 1);
        self.postorder_visit(self.root, &mut order);
        order
    }

    fn postorder_visit(&self, id: NodeId, out: &mut Vec<NodeId>) {
        let node = &self.nodes[id];
        if node.taxon.is_some() {
            return;
        }
        for &c in &node.children {
            self.postorder_visit(c, out);
        }
        out.push(id);
    }

    /// Sum of all branch lengths (tree length).
    pub fn tree_length(&self) -> f64 {
        self.nodes
            .iter()
            .enumerate()
            .filter(|&(id, _)| id != self.root)
            .map(|(_, n)| n.branch_length)
            .sum()
    }

    /// The BEAGLE operation schedule for a full post-order traversal:
    /// `(destination, (child1, matrix1), (child2, matrix2))` where buffer and
    /// matrix indices both equal node ids (the standard client convention).
    pub fn operation_schedule(&self) -> Vec<ScheduleEntry> {
        self.postorder_internal()
            .into_iter()
            .map(|id| {
                let ch = &self.nodes[id].children;
                ScheduleEntry {
                    destination: id,
                    child1: ch[0],
                    matrix1: ch[0],
                    child2: ch[1],
                    matrix2: ch[1],
                }
            })
            .collect()
    }

    /// All `(node, branch_length)` pairs that need a transition matrix
    /// (every node except the root).
    pub fn branch_assignments(&self) -> Vec<(NodeId, f64)> {
        (0..self.nodes.len())
            .filter(|&id| id != self.root)
            .map(|id| (id, self.nodes[id].branch_length))
            .collect()
    }

    /// Perform a nearest-neighbor interchange around the branch above
    /// internal node `v` (which must be a non-root internal node): swaps a
    /// random child of `v` with `v`'s sibling. Returns the two nodes swapped,
    /// or `None` if `v` is not eligible.
    pub fn nni<R: Rng>(&mut self, v: NodeId, rng: &mut R) -> Option<(NodeId, NodeId)> {
        if self.is_tip(v) || v == self.root {
            return None;
        }
        let parent = self.nodes[v].parent.expect("non-root has parent");
        let sibling = *self.nodes[parent]
            .children
            .iter()
            .find(|&&c| c != v)
            .expect("binary parent has a sibling");
        let child_slot = rng.random_range(0..2);
        let child = self.nodes[v].children[child_slot];
        // Swap `child` (under v) with `sibling` (under parent).
        self.nodes[v].children[child_slot] = sibling;
        let sib_slot = self.nodes[parent]
            .children
            .iter()
            .position(|&c| c == sibling)
            .unwrap();
        self.nodes[parent].children[sib_slot] = child;
        self.nodes[sibling].parent = Some(v);
        self.nodes[child].parent = Some(parent);
        Some((child, sibling))
    }

    /// Internal non-root nodes (eligible NNI pivots).
    pub fn nni_candidates(&self) -> Vec<NodeId> {
        (self.taxon_count..self.nodes.len())
            .filter(|&id| id != self.root)
            .collect()
    }

    /// Re-root the tree at the branch above `v` (which must not be the
    /// root): the new root's children are `v` (keeping its branch length)
    /// and the rest of the tree (with branch length 0 on its side).
    ///
    /// For a reversible model this leaves the likelihood unchanged (pulley
    /// principle) and exposes the branch above `v` as a root edge, which is
    /// what Newton–Raphson branch optimizers need: changing that one length
    /// invalidates no partials. Returns `(tree, rest_root)` where
    /// `rest_root` is the new root's non-`v` child.
    ///
    /// When `v`'s parent *is* already the root, the sibling's branch length
    /// is folded into `v`'s (same unrooted tree) so the full unrooted edge
    /// is exposed on `v`'s side.
    pub fn reroot_above(&self, v: NodeId) -> (Tree, NodeId) {
        assert_ne!(v, self.root, "cannot re-root above the root");
        let mut nodes = self.nodes.clone();
        let old_root = self.root;
        let parent = nodes[v].parent.expect("non-root node has a parent");

        if parent == old_root {
            // Already a root edge: fold the sibling branch into v's.
            let sibling = *nodes[old_root]
                .children
                .iter()
                .find(|&&c| c != v)
                .expect("binary root");
            nodes[v].branch_length += nodes[sibling].branch_length;
            nodes[sibling].branch_length = 0.0;
            let t = Tree::from_nodes(nodes, old_root, self.taxon_count);
            return (t, sibling);
        }

        // Path from parent up to (excluding) the old root.
        let mut path = vec![parent];
        while let Some(p) = nodes[*path.last().unwrap()].parent {
            if p == old_root {
                break;
            }
            path.push(p);
        }
        // The old root's child on the path, and its other child.
        let top = *path.last().unwrap();
        let other = *nodes[old_root]
            .children
            .iter()
            .find(|&&c| c != top)
            .expect("binary root");

        // Reverse edges along the path. A rooted branch length lives on the
        // *lower* node of its edge, so the reversed edge (p_w ← p_{w+1})
        // must carry p_w's ORIGINAL upward branch; snapshot lengths first
        // because the loop overwrites them as it walks.
        let orig_branch: Vec<f64> = nodes.iter().map(|n| n.branch_length).collect();
        for w in 0..path.len() {
            let node = path[w];
            let former_parent = if w + 1 < path.len() {
                path[w + 1]
            } else {
                old_root
            };
            // The node's new child is its former parent — except at the top
            // of the path, which adopts the old root's OTHER child with the
            // two root-edge halves merged (the old root vanishes from the
            // unrooted tree).
            let (new_child, new_child_branch) = if former_parent == old_root {
                (other, orig_branch[top] + orig_branch[other])
            } else {
                (former_parent, orig_branch[node])
            };
            // Replace the downward link that pointed along the path.
            let down = if w == 0 { v } else { path[w - 1] };
            let slot = nodes[node]
                .children
                .iter()
                .position(|&c| c == down)
                .expect("path child present");
            nodes[node].children[slot] = new_child;
            nodes[new_child].parent = Some(node);
            nodes[new_child].branch_length = new_child_branch;
        }

        // Reuse the old root's arena slot as the new root.
        nodes[old_root].children = vec![v, parent];
        nodes[old_root].parent = None;
        nodes[old_root].branch_length = 0.0;
        nodes[v].parent = Some(old_root);
        // v keeps its branch length; the rest side carries 0.
        nodes[parent].parent = Some(old_root);
        nodes[parent].branch_length = 0.0;

        let t = Tree::from_nodes(nodes, old_root, self.taxon_count);
        (t, parent)
    }
}

/// One partial-likelihood operation of a post-order schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Node (= partials buffer = scale buffer) being computed.
    pub destination: NodeId,
    /// First child buffer index.
    pub child1: NodeId,
    /// Transition matrix index for the child-1 branch.
    pub matrix1: NodeId,
    /// Second child buffer index.
    pub child2: NodeId,
    /// Transition matrix index for the child-2 branch.
    pub matrix2: NodeId,
}

fn sample_exp<R: Rng>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.random_range(1e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ladder_shape() {
        let t = Tree::ladder(4, 0.1);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.taxon_count(), 4);
        let post = t.postorder_internal();
        assert_eq!(post.len(), 3);
        assert_eq!(*post.last().unwrap(), t.root());
    }

    #[test]
    fn random_tree_valid_for_many_sizes() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [2usize, 3, 8, 33, 128] {
            let t = Tree::random(n, 0.1, &mut rng);
            assert_eq!(t.node_count(), 2 * n - 1);
            // validate() ran in the constructor; also check post-order covers
            // all internals exactly once.
            let post = t.postorder_internal();
            assert_eq!(post.len(), n - 1);
            let mut seen = std::collections::HashSet::new();
            for id in post {
                assert!(!t.is_tip(id));
                assert!(seen.insert(id));
            }
        }
    }

    #[test]
    fn postorder_children_first() {
        let mut rng = SmallRng::seed_from_u64(7);
        let t = Tree::random(16, 0.1, &mut rng);
        let post = t.postorder_internal();
        let pos: std::collections::HashMap<_, _> =
            post.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for &id in &post {
            for &c in &t.node(id).children {
                if !t.is_tip(c) {
                    assert!(pos[&c] < pos[&id], "child {c} must precede parent {id}");
                }
            }
        }
    }

    #[test]
    fn schedule_matches_postorder() {
        let t = Tree::ladder(5, 0.2);
        let sched = t.operation_schedule();
        assert_eq!(sched.len(), 4);
        for entry in &sched {
            let ch = &t.node(entry.destination).children;
            assert_eq!(ch, &vec![entry.child1, entry.child2]);
        }
    }

    #[test]
    fn branch_assignments_exclude_root() {
        let t = Tree::ladder(4, 0.1);
        let b = t.branch_assignments();
        assert_eq!(b.len(), t.node_count() - 1);
        assert!(b.iter().all(|&(id, _)| id != t.root()));
    }

    #[test]
    fn nni_preserves_validity() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut t = Tree::random(12, 0.1, &mut rng);
        for _ in 0..50 {
            let cands = t.nni_candidates();
            let v = cands[rng.random_range(0..cands.len())];
            t.nni(v, &mut rng);
            // Re-validate the full invariant set.
            let nodes = (0..t.node_count())
                .map(|i| t.node(i).clone())
                .collect::<Vec<_>>();
            let _revalidated = Tree::from_nodes(nodes, t.root(), t.taxon_count());
        }
    }

    #[test]
    fn nni_rejects_tips_and_root() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut t = Tree::ladder(4, 0.1);
        assert!(t.nni(0, &mut rng).is_none(), "tip is not an NNI pivot");
        let root = t.root();
        assert!(t.nni(root, &mut rng).is_none(), "root is not an NNI pivot");
    }

    #[test]
    fn reroot_preserves_likelihood() {
        use crate::likelihood::log_likelihood;
        use crate::models::nucleotide::hky85;
        use crate::patterns::SitePatterns;
        use crate::rates::SiteRates;
        use crate::simulate::simulate_alignment;

        let mut rng = SmallRng::seed_from_u64(55);
        let tree = Tree::random(10, 0.15, &mut rng);
        let model = hky85(2.0, &[0.3, 0.2, 0.25, 0.25]);
        let rates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &model, &rates, 120, &mut rng);
        let pats = SitePatterns::compress(&aln);
        let reference = log_likelihood(&tree, &model, &rates, &pats);

        // Re-rooting above ANY non-root node must not change the likelihood
        // (pulley principle), and must preserve the unrooted tree length.
        for v in 0..tree.node_count() {
            if v == tree.root() {
                continue;
            }
            let (rt, rest) = tree.reroot_above(v);
            assert_eq!(rt.node_count(), tree.node_count());
            assert!(
                (rt.tree_length() - tree.tree_length()).abs() < 1e-12,
                "node {v}"
            );
            let lnl = log_likelihood(&rt, &model, &rates, &pats);
            assert!(
                (lnl - reference).abs() < 1e-9,
                "reroot above {v}: {lnl} vs {reference}"
            );
            // The rest-root is the new root's other child with branch 0
            // (or the folded sibling when v was a root child).
            assert!(rt.node(rt.root()).children.contains(&rest));
            assert_eq!(rt.node(rest).branch_length, 0.0);
        }
    }

    #[test]
    fn reroot_above_root_child_folds_sibling() {
        let t = Tree::ladder(4, 0.25);
        let root = t.root();
        let v = t.node(root).children[0];
        let (rt, rest) = t.reroot_above(v);
        assert_eq!(rt.root(), root, "root slot reused");
        assert_eq!(rt.node(rest).branch_length, 0.0);
        // v's branch now carries both root-edge halves.
        assert!((rt.node(v).branch_length - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tree_length_sums_branches() {
        let t = Tree::ladder(3, 0.5);
        // 3 tips + 1 non-root internal node have branches (root excluded).
        assert!((t.tree_length() - 4.0 * 0.5).abs() < 1e-12);
    }
}
