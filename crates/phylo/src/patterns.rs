//! Unique site-pattern compression.
//!
//! The likelihood of a tree factorizes over alignment columns, and identical
//! columns contribute identical per-site likelihoods, so every serious
//! phylogenetics code first compresses the alignment into *unique site
//! patterns* with integer weights. The paper's benchmarks are all
//! parameterized by the unique-pattern count, which is why this module sits
//! at the base of the harness.

use std::collections::HashMap;

use crate::sequence::Alignment;

/// A compressed alignment: unique columns plus their multiplicities.
#[derive(Clone, Debug)]
pub struct SitePatterns {
    /// `patterns[p]` is the column of states (one per taxon) of pattern `p`.
    patterns: Vec<Vec<u32>>,
    /// Number of original alignment columns matching each pattern.
    weights: Vec<f64>,
    /// For each original site, the index of its pattern (site → pattern map).
    site_to_pattern: Vec<usize>,
}

impl SitePatterns {
    /// Compress an alignment into unique patterns, preserving first-seen order.
    pub fn compress(alignment: &Alignment) -> Self {
        let mut index: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut patterns = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let mut site_to_pattern = Vec::with_capacity(alignment.site_count());
        for s in 0..alignment.site_count() {
            let col = alignment.column(s);
            let id = *index.entry(col.clone()).or_insert_with(|| {
                patterns.push(col);
                weights.push(0.0);
                patterns.len() - 1
            });
            weights[id] += 1.0;
            site_to_pattern.push(id);
        }
        Self {
            patterns,
            weights,
            site_to_pattern,
        }
    }

    /// Construct directly from unique patterns and weights (used by the
    /// synthetic-data generator, which can emit unique patterns natively).
    pub fn from_parts(patterns: Vec<Vec<u32>>, weights: Vec<f64>) -> Self {
        assert_eq!(patterns.len(), weights.len());
        let site_to_pattern = (0..patterns.len()).collect();
        Self {
            patterns,
            weights,
            site_to_pattern,
        }
    }

    /// Number of unique patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Number of taxa per pattern.
    pub fn taxon_count(&self) -> usize {
        self.patterns.first().map_or(0, Vec::len)
    }

    /// Pattern `p`: the state of each taxon.
    pub fn pattern(&self, p: usize) -> &[u32] {
        &self.patterns[p]
    }

    /// Pattern weights (column multiplicities).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Site → pattern map for the original alignment.
    pub fn site_to_pattern(&self) -> &[usize] {
        &self.site_to_pattern
    }

    /// Sum of weights = original number of sites.
    pub fn total_sites(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The state sequence of taxon `t` across patterns, as BEAGLE tip data.
    pub fn tip_states(&self, t: usize) -> Vec<u32> {
        self.patterns.iter().map(|col| col[t]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn aln(rows: &[(&str, &str)]) -> Alignment {
        Alignment::from_text(Alphabet::Dna, rows)
    }

    #[test]
    fn identical_columns_merge() {
        let a = aln(&[("a", "AAAT"), ("b", "CCCG")]);
        let p = SitePatterns::compress(&a);
        assert_eq!(p.pattern_count(), 2);
        assert_eq!(p.weights(), &[3.0, 1.0]);
        assert_eq!(p.total_sites(), 4.0);
        assert_eq!(p.site_to_pattern(), &[0, 0, 0, 1]);
    }

    #[test]
    fn all_distinct_columns_keep_count() {
        let a = aln(&[("a", "ACGT"), ("b", "TGCA")]);
        let p = SitePatterns::compress(&a);
        assert_eq!(p.pattern_count(), 4);
        assert!(p.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn tip_states_extracts_rows() {
        let a = aln(&[("a", "AAT"), ("b", "CCG")]);
        let p = SitePatterns::compress(&a);
        assert_eq!(p.tip_states(0), vec![0, 3]);
        assert_eq!(p.tip_states(1), vec![1, 2]);
    }

    #[test]
    fn weights_sum_to_sites() {
        let a = aln(&[("a", "ACGTACGTAC"), ("b", "ACGTACGTAC")]);
        let p = SitePatterns::compress(&a);
        assert_eq!(p.total_sites(), 10.0);
        assert_eq!(p.pattern_count(), 4);
    }
}
