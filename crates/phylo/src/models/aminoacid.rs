//! Amino-acid (20-state) substitution models.
//!
//! The paper's benchmarks run nucleotide and codon data, but BEAGLE supports
//! amino-acid inference (the kernels are generated per state count), so the
//! 20-state path is covered here by the Poisson model (the 20-state analogue
//! of JC69) and by arbitrary user-supplied exchangeability matrices (the form
//! empirical models like WAG/LG take; their published rate tables can be fed
//! straight into [`empirical`]).

use crate::alphabet::Alphabet;
use crate::math::linalg::SquareMatrix;
use crate::models::ReversibleModel;

/// Poisson model: all exchangeabilities equal. With `pi = uniform` this is
/// the exact 20-state analogue of JC69.
pub fn poisson(pi: &[f64; 20]) -> ReversibleModel {
    let mut r = SquareMatrix::zeros(20);
    for i in 0..20 {
        for j in 0..20 {
            if i != j {
                r[(i, j)] = 1.0;
            }
        }
    }
    ReversibleModel::from_exchangeabilities(Alphabet::AminoAcid, &r, pi)
}

/// Uniform amino-acid frequencies.
pub fn uniform_frequencies() -> [f64; 20] {
    [0.05; 20]
}

/// Build an empirical-style model from the 190 upper-triangle
/// exchangeabilities (row-major order: (0,1), (0,2), …, (18,19)) and 20
/// frequencies. This is the input format in which WAG, LG, JTT, etc. are
/// published.
pub fn empirical(upper_triangle: &[f64; 190], pi: &[f64; 20]) -> ReversibleModel {
    let mut r = SquareMatrix::zeros(20);
    let mut k = 0;
    for i in 0..20 {
        for j in (i + 1)..20 {
            r[(i, j)] = upper_triangle[k];
            r[(j, i)] = upper_triangle[k];
            k += 1;
        }
    }
    ReversibleModel::from_exchangeabilities(Alphabet::AminoAcid, &r, pi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_uniform_is_symmetric_jc_analogue() {
        let m = poisson(&uniform_frequencies());
        let q = m.rate_matrix();
        // All off-diagonals equal; diagonal = -(19 * off).
        let off = q[(0, 1)];
        for i in 0..20 {
            for j in 0..20 {
                if i != j {
                    assert!((q[(i, j)] - off).abs() < 1e-12);
                }
            }
            assert!((q[(i, i)] + 19.0 * off).abs() < 1e-12);
        }
        // Normalized: -sum pi_i q_ii = 1
        let rate: f64 = (0..20).map(|i| -0.05 * q[(i, i)]).sum();
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_transition_matrix_analytic() {
        // For the s-state Poisson/JC model: p_same = 1/s + (1-1/s) e^{-st/(s-1)}.
        let s = 20.0;
        let m = poisson(&uniform_frequencies());
        let t = 0.4;
        let p = m.transition_matrix(t);
        let e = (-s * t / (s - 1.0)).exp();
        let same = 1.0 / s + (1.0 - 1.0 / s) * e;
        let diff = 1.0 / s - e / s;
        assert!((p[(3, 3)] - same).abs() < 1e-10);
        assert!((p[(3, 7)] - diff).abs() < 1e-10);
    }

    #[test]
    fn empirical_model_detailed_balance() {
        // A deterministic pseudo-empirical table: r_ij = 1 + ((i*7+j*13) % 10)/5.
        let mut upper = [0.0; 190];
        let mut k = 0;
        for i in 0..20usize {
            for j in (i + 1)..20 {
                upper[k] = 1.0 + ((i * 7 + j * 13) % 10) as f64 / 5.0;
                k += 1;
            }
        }
        let mut pi = [0.0; 20];
        let total: f64 = (1..=20).map(|x| x as f64).sum();
        for (i, p) in pi.iter_mut().enumerate() {
            *p = (i + 1) as f64 / total;
        }
        let m = empirical(&upper, &pi);
        let q = m.rate_matrix();
        for i in 0..20 {
            for j in 0..20 {
                assert!((pi[i] * q[(i, j)] - pi[j] * q[(j, i)]).abs() < 1e-12);
            }
        }
    }
}
