//! Substitution models.
//!
//! All models used in likelihood-based phylogenetics are continuous-time
//! Markov chains given by a reversible rate matrix `Q` and stationary
//! frequencies `π`. [`ReversibleModel`] holds the normalized `Q`, `π`, and
//! the eigendecomposition the BEAGLE API consumes. Constructors for the
//! standard named models live in the submodules:
//!
//! * nucleotide (4 states): JC69, K80, HKY85, GTR
//! * amino acid (20 states): Poisson, arbitrary GTR-style exchangeabilities
//! * codon (61 states): Goldman–Yang-style (κ, ω) model

pub mod aminoacid;
pub mod codon;
pub mod nucleotide;

use crate::alphabet::Alphabet;
use crate::math::eigen::{decompose_reversible, EigenDecomposition};
use crate::math::linalg::SquareMatrix;

/// A reversible substitution model, normalized to one expected substitution
/// per unit branch length at stationarity.
#[derive(Clone, Debug)]
pub struct ReversibleModel {
    alphabet: Alphabet,
    q: SquareMatrix,
    pi: Vec<f64>,
    eigen: EigenDecomposition,
}

impl ReversibleModel {
    /// Build from symmetric exchangeabilities `r` (with an arbitrary,
    /// ignored diagonal) and frequencies `pi`: `q_ij = r_ij · π_j`, rows
    /// completed to sum to zero, then normalized so that
    /// `−Σ_i π_i q_ii = 1`.
    pub fn from_exchangeabilities(
        alphabet: Alphabet,
        r: &SquareMatrix,
        pi: &[f64],
    ) -> ReversibleModel {
        let n = alphabet.state_count();
        assert_eq!(r.dim(), n);
        assert_eq!(pi.len(), n);
        let fsum: f64 = pi.iter().sum();
        assert!(
            (fsum - 1.0).abs() < 1e-9,
            "frequencies must sum to 1, got {fsum}"
        );
        assert!(
            pi.iter().all(|&p| p >= 0.0),
            "frequencies must be non-negative"
        );

        let mut q = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    // Symmetrize defensively; exchangeability matrices are
                    // symmetric by definition.
                    let rij = 0.5 * (r[(i, j)] + r[(j, i)]);
                    q[(i, j)] = rij * pi[j];
                }
            }
        }
        complete_and_normalize(&mut q, pi);
        let eigen = decompose_reversible(&q, pi);
        ReversibleModel {
            alphabet,
            q,
            pi: pi.to_vec(),
            eigen,
        }
    }

    /// The alphabet this model acts on.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// State count (4, 20, or 61).
    pub fn state_count(&self) -> usize {
        self.alphabet.state_count()
    }

    /// Stationary frequencies `π`.
    pub fn frequencies(&self) -> &[f64] {
        &self.pi
    }

    /// The normalized rate matrix `Q`.
    pub fn rate_matrix(&self) -> &SquareMatrix {
        &self.q
    }

    /// Eigendecomposition of `Q` for the BEAGLE `set_eigen_decomposition` call.
    pub fn eigen(&self) -> &EigenDecomposition {
        &self.eigen
    }

    /// Transition probability matrix `P(t)` for branch length `t`.
    pub fn transition_matrix(&self, t: f64) -> SquareMatrix {
        self.eigen.transition_matrix(t)
    }
}

/// Fill the diagonal so rows sum to zero, then scale `Q` so the expected
/// substitution rate `−Σ_i π_i q_ii` is exactly 1.
pub(crate) fn complete_and_normalize(q: &mut SquareMatrix, pi: &[f64]) {
    let n = q.dim();
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                row_sum += q[(i, j)];
            }
        }
        q[(i, i)] = -row_sum;
    }
    let rate: f64 = (0..n).map(|i| -pi[i] * q[(i, i)]).sum();
    assert!(rate > 0.0, "degenerate rate matrix");
    q.scale(1.0 / rate);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchangeability_model_is_reversible_and_normalized() {
        let mut r = SquareMatrix::zeros(4);
        let ex = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut k = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                r[(i, j)] = ex[k];
                r[(j, i)] = ex[k];
                k += 1;
            }
        }
        let pi = [0.1, 0.2, 0.3, 0.4];
        let m = ReversibleModel::from_exchangeabilities(Alphabet::Dna, &r, &pi);
        let q = m.rate_matrix();
        // Detailed balance.
        for i in 0..4 {
            for j in 0..4 {
                assert!((pi[i] * q[(i, j)] - pi[j] * q[(j, i)]).abs() < 1e-12);
            }
        }
        // Rows sum to zero.
        for i in 0..4 {
            let s: f64 = q.row(i).iter().sum();
            assert!(s.abs() < 1e-12);
        }
        // Normalized rate.
        let rate: f64 = (0..4).map(|i| -pi[i] * q[(i, i)]).sum();
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationarity_of_transition_matrix() {
        let mut r = SquareMatrix::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    r[(i, j)] = 1.0;
                }
            }
        }
        let pi = [0.4, 0.3, 0.2, 0.1];
        let m = ReversibleModel::from_exchangeabilities(Alphabet::Dna, &r, &pi);
        let p = m.transition_matrix(0.7);
        // π P = π
        let pt = p.transpose().matvec(&pi);
        for (a, b) in pt.iter().zip(&pi) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
