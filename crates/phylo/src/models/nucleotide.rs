//! Nucleotide (4-state) substitution models: JC69, K80, HKY85, GTR.
//!
//! States are ordered A, C, G, T. Transitions (in the biochemical sense) are
//! A↔G and C↔T; everything else is a transversion.

use crate::alphabet::Alphabet;
use crate::math::linalg::SquareMatrix;
use crate::models::ReversibleModel;

/// True if `i↔j` is a transition (purine↔purine or pyrimidine↔pyrimidine).
#[inline]
pub fn is_transition(i: usize, j: usize) -> bool {
    matches!((i, j), (0, 2) | (2, 0) | (1, 3) | (3, 1))
}

/// Jukes–Cantor 1969: equal rates, equal frequencies.
pub fn jc69() -> ReversibleModel {
    gtr(&[1.0; 6], &[0.25; 4])
}

/// Kimura 1980: transition/transversion ratio `kappa`, equal frequencies.
pub fn k80(kappa: f64) -> ReversibleModel {
    hky85(kappa, &[0.25; 4])
}

/// Hasegawa–Kishino–Yano 1985: `kappa` plus arbitrary base frequencies.
pub fn hky85(kappa: f64, pi: &[f64; 4]) -> ReversibleModel {
    assert!(kappa > 0.0);
    let mut r = SquareMatrix::zeros(4);
    for i in 0..4 {
        for j in 0..4 {
            if i != j {
                r[(i, j)] = if is_transition(i, j) { kappa } else { 1.0 };
            }
        }
    }
    ReversibleModel::from_exchangeabilities(Alphabet::Dna, &r, pi)
}

/// General time-reversible model. `rates` are the six exchangeabilities in
/// the conventional order (AC, AG, AT, CG, CT, GT).
pub fn gtr(rates: &[f64; 6], pi: &[f64; 4]) -> ReversibleModel {
    assert!(
        rates.iter().all(|&x| x > 0.0),
        "exchangeabilities must be positive"
    );
    let mut r = SquareMatrix::zeros(4);
    let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    for (k, &(i, j)) in pairs.iter().enumerate() {
        r[(i, j)] = rates[k];
        r[(j, i)] = rates[k];
    }
    ReversibleModel::from_exchangeabilities(Alphabet::Dna, &r, pi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jc69_matches_analytic() {
        let m = jc69();
        let p = m.transition_matrix(0.3);
        let e = (-4.0 * 0.3 / 3.0_f64).exp();
        assert!((p[(0, 0)] - (0.25 + 0.75 * e)).abs() < 1e-10);
        assert!((p[(0, 1)] - (0.25 - 0.25 * e)).abs() < 1e-10);
    }

    #[test]
    fn k80_transition_bias() {
        let m = k80(5.0);
        let q = m.rate_matrix();
        // A->G rate should be 5x the A->C rate.
        assert!((q[(0, 2)] / q[(0, 1)] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn k80_with_kappa_one_is_jc() {
        let a = k80(1.0);
        let b = jc69();
        assert!(a.rate_matrix().max_abs_diff(b.rate_matrix()) < 1e-12);
    }

    #[test]
    fn hky_stationary_frequencies() {
        let pi = [0.35, 0.15, 0.20, 0.30];
        let m = hky85(2.0, &pi);
        let p = m.transition_matrix(50.0); // long branch → stationary rows
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[(i, j)] - pi[j]).abs() < 1e-6, "P[{i}{j}]");
            }
        }
    }

    #[test]
    fn gtr_reduces_to_hky() {
        let pi = [0.1, 0.2, 0.3, 0.4];
        let kappa = 3.0;
        let g = gtr(&[1.0, kappa, 1.0, 1.0, kappa, 1.0], &pi);
        let h = hky85(kappa, &pi);
        assert!(g.rate_matrix().max_abs_diff(h.rate_matrix()) < 1e-12);
    }

    #[test]
    fn transition_classification() {
        assert!(is_transition(0, 2) && is_transition(2, 0)); // A<->G
        assert!(is_transition(1, 3) && is_transition(3, 1)); // C<->T
        assert!(!is_transition(0, 1) && !is_transition(0, 3));
        assert!(!is_transition(1, 2) && !is_transition(2, 3));
    }
}
