//! Codon (61-state) substitution models.
//!
//! Implements a Goldman–Yang / Muse–Gaut style codon model: substitutions
//! between codons differing at exactly one nucleotide position, with rate
//! multipliers `kappa` for transitions and `omega` (dN/dS) for nonsynonymous
//! changes. This is the model class the paper's codon benchmarks exercise
//! (61 biologically meaningful states; Fig. 4 bottom panel, Fig. 6).

use crate::alphabet::{codon_tables, Alphabet};
use crate::math::linalg::SquareMatrix;
use crate::models::ReversibleModel;

use super::nucleotide::is_transition;

/// Parameters of the GY94-style codon model.
#[derive(Clone, Copy, Debug)]
pub struct CodonModelParams {
    /// Transition/transversion rate ratio.
    pub kappa: f64,
    /// Nonsynonymous/synonymous rate ratio (dN/dS).
    pub omega: f64,
}

impl Default for CodonModelParams {
    fn default() -> Self {
        Self {
            kappa: 2.0,
            omega: 0.5,
        }
    }
}

/// Build a GY94-style codon model with the given codon frequencies.
pub fn gy94(params: CodonModelParams, pi: &[f64; 61]) -> ReversibleModel {
    assert!(params.kappa > 0.0 && params.omega > 0.0);
    let tables = codon_tables();
    let mut r = SquareMatrix::zeros(61);
    for i in 0..61 {
        for j in (i + 1)..61 {
            let ti = tables.state_to_triplet[i];
            let tj = tables.state_to_triplet[j];
            let Some((ni, nj)) = single_nucleotide_difference(ti, tj) else {
                continue; // multi-nucleotide changes are instantaneous-rate 0
            };
            let mut rate = 1.0;
            if is_transition(ni, nj) {
                rate *= params.kappa;
            }
            if tables.amino_acid[i] != tables.amino_acid[j] {
                rate *= params.omega;
            }
            r[(i, j)] = rate;
            r[(j, i)] = rate;
        }
    }
    ReversibleModel::from_exchangeabilities(Alphabet::Codon, &r, pi)
}

/// Uniform frequencies over the 61 sense codons.
pub fn uniform_codon_frequencies() -> [f64; 61] {
    [1.0 / 61.0; 61]
}

/// F1x4 codon frequencies: `π_codon ∝ π_{b1} π_{b2} π_{b3}` from nucleotide
/// frequencies, renormalized over sense codons.
pub fn f1x4_frequencies(nuc_pi: &[f64; 4]) -> [f64; 61] {
    let tables = codon_tables();
    let mut pi = [0.0; 61];
    for (s, p) in pi.iter_mut().enumerate() {
        let t = tables.state_to_triplet[s];
        *p = nuc_pi[t / 16] * nuc_pi[(t / 4) % 4] * nuc_pi[t % 4];
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    pi
}

/// If codons (as triplet indices 0..64) differ at exactly one position,
/// return the differing `(nucleotide_i, nucleotide_j)` pair; else `None`.
fn single_nucleotide_difference(ti: usize, tj: usize) -> Option<(usize, usize)> {
    let a = [ti / 16, (ti / 4) % 4, ti % 4];
    let b = [tj / 16, (tj / 4) % 4, tj % 4];
    let mut diff = None;
    for k in 0..3 {
        if a[k] != b[k] {
            if diff.is_some() {
                return None;
            }
            diff = Some((a[k], b[k]));
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_matrix_is_sparse_single_changes_only() {
        let m = gy94(CodonModelParams::default(), &uniform_codon_frequencies());
        let q = m.rate_matrix();
        let tables = codon_tables();
        let mut nonzero_offdiag = 0;
        for i in 0..61 {
            for j in 0..61 {
                if i == j {
                    continue;
                }
                let single = single_nucleotide_difference(
                    tables.state_to_triplet[i],
                    tables.state_to_triplet[j],
                )
                .is_some();
                if q[(i, j)] != 0.0 {
                    nonzero_offdiag += 1;
                    assert!(single, "rate between multi-step codons {i},{j}");
                }
            }
        }
        // Each codon has at most 9 single-nucleotide neighbours.
        assert!(nonzero_offdiag > 0 && nonzero_offdiag <= 61 * 9);
    }

    #[test]
    fn omega_one_kappa_one_all_single_changes_equal() {
        let m = gy94(
            CodonModelParams {
                kappa: 1.0,
                omega: 1.0,
            },
            &uniform_codon_frequencies(),
        );
        let q = m.rate_matrix();
        let mut rates: Vec<f64> = Vec::new();
        for i in 0..61 {
            for j in 0..61 {
                if i != j && q[(i, j)] > 0.0 {
                    rates.push(q[(i, j)]);
                }
            }
        }
        let first = rates[0];
        assert!(rates.iter().all(|&r| (r - first).abs() < 1e-12));
    }

    #[test]
    fn synonymous_vs_nonsynonymous_ratio() {
        let omega = 0.25;
        let m = gy94(
            CodonModelParams { kappa: 1.0, omega },
            &uniform_codon_frequencies(),
        );
        let q = m.rate_matrix();
        let tables = codon_tables();
        // Find one synonymous and one nonsynonymous transversion pair and
        // compare their rates.
        let mut syn = None;
        let mut nonsyn = None;
        'outer: for i in 0..61 {
            for j in 0..61 {
                if i == j || q[(i, j)] == 0.0 {
                    continue;
                }
                let (ni, nj) = single_nucleotide_difference(
                    tables.state_to_triplet[i],
                    tables.state_to_triplet[j],
                )
                .unwrap();
                if is_transition(ni, nj) {
                    continue;
                }
                if tables.amino_acid[i] == tables.amino_acid[j] {
                    syn = Some(q[(i, j)]);
                } else {
                    nonsyn = Some(q[(i, j)]);
                }
                if syn.is_some() && nonsyn.is_some() {
                    break 'outer;
                }
            }
        }
        let (s, n) = (syn.unwrap(), nonsyn.unwrap());
        assert!((n / s - omega).abs() < 1e-12);
    }

    #[test]
    fn f1x4_frequencies_sum_to_one() {
        let pi = f1x4_frequencies(&[0.1, 0.2, 0.3, 0.4]);
        let s: f64 = pi.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn uniform_f1x4_is_not_uniform_over_sense_codons() {
        // Equal nucleotide frequencies still give uneven codon frequencies
        // after removing stops? No — all sense codons get (1/4)^3 then
        // renormalize, so they ARE uniform. Check that.
        let pi = f1x4_frequencies(&[0.25; 4]);
        for &p in &pi {
            assert!((p - 1.0 / 61.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let m = gy94(CodonModelParams::default(), &uniform_codon_frequencies());
        let p = m.transition_matrix(0.2);
        for i in 0..61 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }
}
