//! Reference implementation of Felsenstein's pruning algorithm.
//!
//! A deliberately simple, allocation-heavy, obviously-correct likelihood
//! calculator used as the oracle for every BEAGLE-RS implementation: the
//! integration tests compare each back-end's log-likelihood against this.
//! It implements equation (1) of the paper directly.

use crate::alphabet::GAP_STATE;
use crate::models::ReversibleModel;
use crate::patterns::SitePatterns;
use crate::rates::SiteRates;
use crate::tree::Tree;

/// Log-likelihood of `patterns` on `tree` under `model` + `rates`,
/// by direct post-order pruning in `f64`.
pub fn log_likelihood(
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    patterns: &SitePatterns,
) -> f64 {
    let s = model.state_count();
    let n_pat = patterns.pattern_count();
    let n_cat = rates.category_count();
    assert_eq!(patterns.taxon_count(), tree.taxon_count());

    // Transition matrices per (node, category).
    let mut p_mats: Vec<Vec<crate::math::linalg::SquareMatrix>> =
        vec![Vec::new(); tree.node_count()];
    for (node, t) in tree.branch_assignments() {
        for &r in &rates.rates {
            p_mats[node].push(model.transition_matrix(r * t));
        }
    }

    // partials[node][cat][pattern][state]
    let mut partials: Vec<Option<Vec<f64>>> = vec![None; tree.node_count()];
    for tip in 0..tree.taxon_count() {
        let mut buf = vec![0.0; n_cat * n_pat * s];
        for p in 0..n_pat {
            let st = patterns.pattern(p)[tip];
            for c in 0..n_cat {
                let base = (c * n_pat + p) * s;
                if st == GAP_STATE {
                    for k in 0..s {
                        buf[base + k] = 1.0;
                    }
                } else {
                    buf[base + st as usize] = 1.0;
                }
            }
        }
        partials[tip] = Some(buf);
    }

    for entry in tree.operation_schedule() {
        let c1 = partials[entry.child1]
            .as_ref()
            .expect("child computed")
            .clone();
        let c2 = partials[entry.child2]
            .as_ref()
            .expect("child computed")
            .clone();
        let mut dest = vec![0.0; n_cat * n_pat * s];
        for c in 0..n_cat {
            let p1 = &p_mats[entry.matrix1][c];
            let p2 = &p_mats[entry.matrix2][c];
            for p in 0..n_pat {
                let base = (c * n_pat + p) * s;
                for i in 0..s {
                    let mut sum1 = 0.0;
                    let mut sum2 = 0.0;
                    for j in 0..s {
                        sum1 += p1[(i, j)] * c1[base + j];
                        sum2 += p2[(i, j)] * c2[base + j];
                    }
                    dest[base + i] = sum1 * sum2;
                }
            }
        }
        partials[entry.destination] = Some(dest);
    }

    let root = partials[tree.root()].as_ref().unwrap();
    integrate_root(
        root,
        model.frequencies(),
        &rates.weights,
        patterns,
        n_pat,
        s,
    )
}

/// Integrate root partials over states and categories, weight by pattern
/// counts, and sum logs.
fn integrate_root(
    root: &[f64],
    freqs: &[f64],
    cat_weights: &[f64],
    patterns: &SitePatterns,
    n_pat: usize,
    s: usize,
) -> f64 {
    let mut lnl = 0.0;
    for p in 0..n_pat {
        let mut site_l = 0.0;
        for (c, &w) in cat_weights.iter().enumerate() {
            let base = (c * n_pat + p) * s;
            let mut state_sum = 0.0;
            for (k, &f) in freqs.iter().enumerate() {
                state_sum += f * root[base + k];
            }
            site_l += w * state_sum;
        }
        lnl += patterns.weights()[p] * site_l.ln();
    }
    lnl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::models::nucleotide::{hky85, jc69};
    use crate::sequence::Alignment;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Analytic two-taxon JC69 likelihood: for one site with tip states a, b
    /// at distance t = t_a + t_b, L = π_a P_ab(t).
    #[test]
    fn two_taxon_jc_analytic() {
        let model = jc69();
        let (ta, tb) = (0.13, 0.21);
        let t = ta + tb;
        let mut tree = Tree::ladder(2, 0.0);
        tree.node_mut(0).branch_length = ta;
        tree.node_mut(1).branch_length = tb;

        let aln = Alignment::from_text(Alphabet::Dna, &[("a", "AAG"), ("b", "ACG")]);
        let pats = SitePatterns::compress(&aln);
        let lnl = log_likelihood(&tree, &model, &SiteRates::constant(), &pats);

        let e = (-4.0 * t / 3.0_f64).exp();
        let p_same = 0.25 + 0.75 * e;
        let p_diff = 0.25 - 0.25 * e;
        // Sites: (A,A) same, (A,C) diff, (G,G) same.
        let expect = (0.25 * p_same).ln() * 2.0 + (0.25 * p_diff).ln();
        assert!((lnl - expect).abs() < 1e-10, "{lnl} vs {expect}");
    }

    /// The pruning likelihood must be invariant to where the (unrooted)
    /// likelihood is rooted for a reversible model — the pulley principle.
    #[test]
    fn pulley_principle() {
        let model = hky85(2.0, &[0.3, 0.2, 0.3, 0.2]);
        // Tree ((a:x, b:y):z, c:w) vs ((a:x, b:y):0, c:w+z): same likelihood.
        let (x, y, z, w) = (0.1, 0.2, 0.15, 0.3);
        let aln = Alignment::from_text(
            Alphabet::Dna,
            &[("a", "ACGTAC"), ("b", "ACGTTT"), ("c", "GCGTAC")],
        );
        let pats = SitePatterns::compress(&aln);

        let mut t1 = Tree::ladder(3, 0.0);
        t1.node_mut(0).branch_length = x;
        t1.node_mut(1).branch_length = y;
        t1.node_mut(3).branch_length = z; // internal (a,b) node
        t1.node_mut(2).branch_length = w;

        let mut t2 = Tree::ladder(3, 0.0);
        t2.node_mut(0).branch_length = x;
        t2.node_mut(1).branch_length = y;
        t2.node_mut(3).branch_length = 0.0;
        t2.node_mut(2).branch_length = w + z;

        let rates = SiteRates::constant();
        let l1 = log_likelihood(&t1, &model, &rates, &pats);
        let l2 = log_likelihood(&t2, &model, &rates, &pats);
        assert!((l1 - l2).abs() < 1e-9, "{l1} vs {l2}");
    }

    #[test]
    fn gaps_do_not_break_likelihood() {
        let model = jc69();
        let aln = Alignment::from_text(Alphabet::Dna, &[("a", "A-G"), ("b", "ACG")]);
        let pats = SitePatterns::compress(&aln);
        let tree = Tree::ladder(2, 0.1);
        let lnl = log_likelihood(&tree, &model, &SiteRates::constant(), &pats);
        assert!(lnl.is_finite() && lnl < 0.0);
        // A fully gapped column contributes ln(1) = 0 through state marginal-
        // ization... actually it contributes ln(sum_k pi_k * 1) = ln 1 = 0.
        let aln2 = Alignment::from_text(Alphabet::Dna, &[("a", "A-G-"), ("b", "ACG-")]);
        let pats2 = SitePatterns::compress(&aln2);
        let lnl2 = log_likelihood(&tree, &model, &SiteRates::constant(), &pats2);
        assert!(
            (lnl - lnl2).abs() < 1e-10,
            "all-gap column must contribute 0"
        );
    }

    #[test]
    fn rate_heterogeneity_changes_likelihood() {
        let mut rng = SmallRng::seed_from_u64(23);
        let tree = Tree::random(8, 0.2, &mut rng);
        let model = jc69();
        let aln = crate::simulate::simulate_alignment(
            &tree,
            &model,
            &SiteRates::constant(),
            100,
            &mut rng,
        );
        let pats = SitePatterns::compress(&aln);
        let l_const = log_likelihood(&tree, &model, &SiteRates::constant(), &pats);
        let l_gamma = log_likelihood(&tree, &model, &SiteRates::discrete_gamma(0.3, 4), &pats);
        assert!(l_const.is_finite() && l_gamma.is_finite());
        assert!(
            (l_const - l_gamma).abs() > 1e-6,
            "gamma rates should matter"
        );
    }

    #[test]
    fn likelihood_decreases_with_more_data() {
        let mut rng = SmallRng::seed_from_u64(29);
        let tree = Tree::random(5, 0.2, &mut rng);
        let model = jc69();
        let aln = crate::simulate::simulate_alignment(
            &tree,
            &model,
            &SiteRates::constant(),
            400,
            &mut rng,
        );
        let pats = SitePatterns::compress(&aln);
        let lnl = log_likelihood(&tree, &model, &SiteRates::constant(), &pats);
        assert!(lnl < -100.0, "400 sites must carry substantial information");
    }
}
