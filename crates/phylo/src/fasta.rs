//! FASTA alignment parsing and writing.
//!
//! The minimal sequence-file pathway real users need: parse aligned FASTA
//! text into an [`Alignment`] (which then flows into pattern compression and
//! BEAGLE tip data) and write alignments back out. Sequences may span
//! multiple lines; identifiers are the first whitespace-delimited token of
//! each `>` header.

use crate::alphabet::Alphabet;
use crate::sequence::Alignment;

/// Error from FASTA parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct FastaError {
    /// What went wrong.
    pub message: String,
    /// 1-based line number, when attributable.
    pub line: usize,
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FASTA error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FastaError {}

/// Parse aligned FASTA text. All sequences must have equal length (it is an
/// alignment, not a bag of reads); codon alphabets additionally require the
/// length to be divisible by 3.
pub fn parse_fasta(alphabet: Alphabet, text: &str) -> Result<Alignment, FastaError> {
    let mut names: Vec<String> = Vec::new();
    let mut seqs: Vec<String> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let name = header.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(FastaError {
                    message: "empty sequence identifier".into(),
                    line: lineno + 1,
                });
            }
            if names.contains(&name) {
                return Err(FastaError {
                    message: format!("duplicate identifier '{name}'"),
                    line: lineno + 1,
                });
            }
            names.push(name);
            seqs.push(String::new());
        } else {
            let Some(current) = seqs.last_mut() else {
                return Err(FastaError {
                    message: "sequence data before the first '>' header".into(),
                    line: lineno + 1,
                });
            };
            current.push_str(&line.replace(char::is_whitespace, ""));
        }
    }
    if names.is_empty() {
        return Err(FastaError {
            message: "no sequences found".into(),
            line: 0,
        });
    }
    let len = seqs[0].len();
    for (name, s) in names.iter().zip(&seqs) {
        if s.len() != len {
            return Err(FastaError {
                message: format!(
                    "'{name}' has length {} but the alignment is {len} columns",
                    s.len()
                ),
                line: 0,
            });
        }
    }
    if !len.is_multiple_of(alphabet.symbol_width()) {
        return Err(FastaError {
            message: format!(
                "alignment length {len} is not divisible by the symbol width {}",
                alphabet.symbol_width()
            ),
            line: 0,
        });
    }
    let rows: Vec<(&str, &str)> = names
        .iter()
        .map(String::as_str)
        .zip(seqs.iter().map(String::as_str))
        .collect();
    Ok(Alignment::from_text(alphabet, &rows))
}

/// Write an alignment as FASTA, wrapping sequence lines at 70 characters.
pub fn to_fasta(alignment: &Alignment) -> String {
    let mut out = String::new();
    for (t, name) in alignment.taxa().iter().enumerate() {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        let seq = alignment.row_text(t);
        for chunk in seq.as_bytes().chunks(70) {
            out.push_str(std::str::from_utf8(chunk).expect("ascii"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = ">human some description\nACGT\nACGT\n>chimp\nACGTACGA\n";

    #[test]
    fn parses_multiline_sequences() {
        let a = parse_fasta(Alphabet::Dna, SAMPLE).unwrap();
        assert_eq!(a.taxon_count(), 2);
        assert_eq!(a.site_count(), 8);
        assert_eq!(a.taxa(), &["human".to_string(), "chimp".to_string()]);
        assert_eq!(a.row_text(0), "ACGTACGT");
    }

    #[test]
    fn roundtrip() {
        let a = parse_fasta(Alphabet::Dna, SAMPLE).unwrap();
        let text = to_fasta(&a);
        let b = parse_fasta(Alphabet::Dna, &text).unwrap();
        assert_eq!(a.row_text(0), b.row_text(0));
        assert_eq!(a.row_text(1), b.row_text(1));
        assert_eq!(a.taxa(), b.taxa());
    }

    #[test]
    fn gaps_and_ambiguity_become_missing() {
        let a = parse_fasta(Alphabet::Dna, ">x\nAC-N\n>y\nACGT\n").unwrap();
        assert_eq!(a.row(0)[2], crate::alphabet::GAP_STATE);
        assert_eq!(a.row(0)[3], crate::alphabet::GAP_STATE);
    }

    #[test]
    fn ragged_alignment_rejected() {
        let err = parse_fasta(Alphabet::Dna, ">x\nACGT\n>y\nAC\n").unwrap_err();
        assert!(err.message.contains("length"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(parse_fasta(Alphabet::Dna, ">x\nAC\n>x\nGT\n").is_err());
    }

    #[test]
    fn data_before_header_rejected() {
        assert!(parse_fasta(Alphabet::Dna, "ACGT\n>x\nACGT\n").is_err());
    }

    #[test]
    fn codon_width_enforced() {
        assert!(parse_fasta(Alphabet::Codon, ">x\nACGT\n>y\nACGT\n").is_err());
        let ok = parse_fasta(Alphabet::Codon, ">x\nACGTTT\n>y\nATGAAA\n").unwrap();
        assert_eq!(ok.site_count(), 2);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_fasta(Alphabet::Dna, "").is_err());
        assert!(parse_fasta(Alphabet::Dna, "; just a comment\n").is_err());
    }

    #[test]
    fn long_lines_wrap_on_write() {
        let seq = "ACGT".repeat(50); // 200 columns
        let text = format!(">t1\n{seq}\n>t2\n{seq}\n");
        let a = parse_fasta(Alphabet::Dna, &text).unwrap();
        let out = to_fasta(&a);
        assert!(out.lines().all(|l| l.len() <= 70));
        let b = parse_fasta(Alphabet::Dna, &out).unwrap();
        assert_eq!(b.site_count(), 200);
    }
}
