//! # beagle-phylo
//!
//! Phylogenetics substrate for BEAGLE-RS: everything the likelihood library
//! and its client applications need *around* the likelihood kernels.
//!
//! BEAGLE itself deliberately contains no tree or model machinery — the API
//! acts on flexibly indexed buffers. This crate is the "client side" the
//! paper's applications (genomictest, MrBayes) rely on:
//!
//! * [`alphabet`] — nucleotide / amino-acid / codon state spaces
//! * [`sequence`] / [`patterns`] — alignments and unique-site-pattern compression
//! * [`tree`] / [`newick`] — rooted binary trees, traversal schedules, Newick I/O
//! * [`models`] — reversible substitution models (JC69 … GTR, Poisson AA, GY94 codon)
//! * [`rates`] — discrete-gamma (+invariant) among-site rate variation
//! * [`math`] — Jacobi eigendecomposition, gamma special functions, small linalg
//! * [`simulate`] — synthetic data generation (the genomictest input path)
//! * [`likelihood`] — a slow, obviously-correct pruning oracle used in tests
//! * [`clades`] — Robinson–Foulds distance and consensus clade supports
//! * [`fasta`] — aligned-FASTA parsing/writing

// Likelihood kernels and small numeric routines are written with explicit
// index loops on purpose: the loop structure mirrors the work-item/work-group
// decomposition the paper describes, and that clarity outweighs iterator style.
#![allow(clippy::needless_range_loop)]

pub mod alphabet;
pub mod clades;
pub mod fasta;
pub mod likelihood;
pub mod math;
pub mod models;
pub mod newick;
pub mod patterns;
pub mod rates;
pub mod sequence;
pub mod simulate;
pub mod tree;

pub use alphabet::Alphabet;
pub use models::ReversibleModel;
pub use patterns::SitePatterns;
pub use rates::SiteRates;
pub use sequence::Alignment;
pub use tree::Tree;
