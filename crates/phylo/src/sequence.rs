//! Molecular sequence alignments.
//!
//! An [`Alignment`] is a rectangular matrix of encoded states: one row per
//! taxon, one column per site (a site is a nucleotide, an amino acid, or a
//! codon depending on the alphabet). This is the input to site-pattern
//! compression ([`crate::patterns`]) and to the BEAGLE tip-data setters.

use crate::alphabet::{Alphabet, GAP_STATE};

/// A named, aligned set of encoded sequences.
#[derive(Clone, Debug)]
pub struct Alignment {
    alphabet: Alphabet,
    taxa: Vec<String>,
    /// `sites[t]` holds the encoded states of taxon `t`; all rows equal length.
    sites: Vec<Vec<u32>>,
}

impl Alignment {
    /// Build an alignment from already-encoded rows. All rows must have the
    /// same length and all states must be valid for the alphabet (or gaps).
    pub fn from_encoded(alphabet: Alphabet, taxa: Vec<String>, sites: Vec<Vec<u32>>) -> Self {
        assert_eq!(taxa.len(), sites.len(), "one name per sequence");
        if let Some(first) = sites.first() {
            let len = first.len();
            for (t, row) in sites.iter().enumerate() {
                assert_eq!(row.len(), len, "ragged alignment at taxon {t}");
                for &s in row {
                    assert!(
                        s == GAP_STATE || (s as usize) < alphabet.state_count(),
                        "state {s} out of range for {alphabet:?}"
                    );
                }
            }
        }
        Self {
            alphabet,
            taxa,
            sites,
        }
    }

    /// Parse text sequences (e.g. "ACGT..." rows). Codon alphabets consume
    /// three characters per site; the text length must be divisible by the
    /// symbol width. Unknown characters become gaps.
    pub fn from_text(alphabet: Alphabet, rows: &[(&str, &str)]) -> Self {
        let width = alphabet.symbol_width();
        let taxa = rows.iter().map(|(n, _)| n.to_string()).collect();
        let sites = rows
            .iter()
            .map(|(_, seq)| {
                let bytes = seq.as_bytes();
                assert!(
                    bytes.len() % width == 0,
                    "sequence length {} not divisible by symbol width {width}",
                    bytes.len()
                );
                bytes
                    .chunks_exact(width)
                    .map(|c| alphabet.encode(c))
                    .collect()
            })
            .collect();
        Self::from_encoded(alphabet, taxa, sites)
    }

    /// The alphabet the states are encoded in.
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Number of taxa (rows).
    pub fn taxon_count(&self) -> usize {
        self.taxa.len()
    }

    /// Number of sites (columns).
    pub fn site_count(&self) -> usize {
        self.sites.first().map_or(0, Vec::len)
    }

    /// Taxon names, in row order.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// Encoded states of taxon `t`.
    pub fn row(&self, t: usize) -> &[u32] {
        &self.sites[t]
    }

    /// The column of states at site `s`, one entry per taxon.
    pub fn column(&self, s: usize) -> Vec<u32> {
        self.sites.iter().map(|row| row[s]).collect()
    }

    /// Render taxon `t` back to text (useful for tests and dumps).
    pub fn row_text(&self, t: usize) -> String {
        self.sites[t]
            .iter()
            .map(|&s| self.alphabet.decode(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip_dna() {
        let a = Alignment::from_text(Alphabet::Dna, &[("tax1", "ACGT"), ("tax2", "AC-T")]);
        assert_eq!(a.taxon_count(), 2);
        assert_eq!(a.site_count(), 4);
        assert_eq!(a.row(0), &[0, 1, 2, 3]);
        assert_eq!(a.row(1)[2], GAP_STATE);
        assert_eq!(a.row_text(0), "ACGT");
    }

    #[test]
    fn codon_sites_are_triplets() {
        let a = Alignment::from_text(Alphabet::Codon, &[("t", "ATGAAATTT")]);
        assert_eq!(a.site_count(), 3);
        assert_eq!(a.row_text(0), "ATGAAATTT");
    }

    #[test]
    fn column_extraction() {
        let a = Alignment::from_text(Alphabet::Dna, &[("a", "AC"), ("b", "GT")]);
        assert_eq!(a.column(0), vec![0, 2]);
        assert_eq!(a.column(1), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_alignment_rejected() {
        Alignment::from_encoded(
            Alphabet::Dna,
            vec!["a".into(), "b".into()],
            vec![vec![0, 1], vec![0]],
        );
    }
}
