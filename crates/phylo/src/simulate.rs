//! Sequence simulation along a tree.
//!
//! Replaces the paper's empirical datasets (RNA-Seq Lepidoptera, arthropod
//! codon alignments) and mirrors BEAGLE's `genomictest`, which generates
//! random synthetic datasets of arbitrary size. Sites evolve independently
//! down the tree under a [`ReversibleModel`] with optional discrete rate
//! heterogeneity: the root state is drawn from `π`, and each child state from
//! the row of `P(rate · branch)` of its parent state.

use rand::Rng;

use crate::alphabet::Alphabet;
use crate::models::ReversibleModel;
use crate::patterns::SitePatterns;
use crate::rates::SiteRates;
use crate::sequence::Alignment;
use crate::tree::{NodeId, Tree};

/// Simulate an alignment of `site_count` sites for the tips of `tree`.
pub fn simulate_alignment<R: Rng>(
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    site_count: usize,
    rng: &mut R,
) -> Alignment {
    let n_tips = tree.taxon_count();
    let n_states = model.state_count();

    // Precompute one transition matrix per (branch, category).
    let branches = tree.branch_assignments();
    let mut p_tables: Vec<Vec<Vec<f64>>> = vec![Vec::new(); tree.node_count()];
    for &(node, t) in &branches {
        for &rate in &rates.rates {
            let p = model.transition_matrix(rate * t);
            // Store rows as cumulative distributions for O(log s) sampling.
            let cums = (0..n_states)
                .flat_map(|i| {
                    let mut acc = 0.0;
                    p.row(i)
                        .iter()
                        .map(|&x| {
                            acc += x;
                            acc
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<f64>>();
            p_tables[node].push(cums);
        }
    }
    let pi_cum: Vec<f64> = {
        let mut acc = 0.0;
        model
            .frequencies()
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    };

    let mut rows: Vec<Vec<u32>> = vec![Vec::with_capacity(site_count); n_tips];
    let mut states = vec![0u32; tree.node_count()];
    for _ in 0..site_count {
        // Draw a rate category for this site.
        let cat = sample_cum_weights(&rates.weights, rng);
        // Root state from the stationary distribution.
        states[tree.root()] = sample_cdf(&pi_cum, rng) as u32;
        // Pre-order: parents before children.
        preorder(tree, tree.root(), &mut |node: NodeId, parent: NodeId| {
            let cums = &p_tables[node][cat];
            let row = &cums[states[parent] as usize * n_states..][..n_states];
            states[node] = sample_cdf(row, rng) as u32;
        });
        for (t, row) in rows.iter_mut().enumerate() {
            row.push(states[t]);
        }
    }

    let taxa = (0..n_tips).map(|i| format!("taxon{i}")).collect();
    Alignment::from_encoded(model.alphabet(), taxa, rows)
}

/// Simulate and compress, asking for *approximately* `unique_patterns` unique
/// site patterns: sites are generated in batches until the compressed count
/// reaches the target, then truncated to exactly the target.
///
/// This is how the benchmark harness pins the x-axis of Fig. 4 (throughput vs
/// unique pattern count) without depending on the raw site count.
pub fn simulate_patterns<R: Rng>(
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    unique_patterns: usize,
    rng: &mut R,
) -> SitePatterns {
    // For anything beyond tiny problems, random columns over s^n possibilities
    // are essentially all unique, so a single batch usually suffices.
    let mut patterns: Vec<Vec<u32>> = Vec::with_capacity(unique_patterns);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0;
    while patterns.len() < unique_patterns {
        let batch = (unique_patterns - patterns.len()).max(64);
        let aln = simulate_alignment(tree, model, rates, batch, rng);
        for s in 0..aln.site_count() {
            let col = aln.column(s);
            if seen.insert(col.clone()) {
                patterns.push(col);
                if patterns.len() == unique_patterns {
                    break;
                }
            }
        }
        guard += 1;
        assert!(
            guard < 1000,
            "cannot reach {unique_patterns} unique patterns; state space too small"
        );
    }
    // Give patterns mildly varying weights (as real compressed data has).
    let weights = (0..unique_patterns)
        .map(|_| 1.0 + rng.random_range(0..3) as f64)
        .collect();
    SitePatterns::from_parts(patterns, weights)
}

/// Quick check for the state-space guard: number of distinct columns possible.
pub fn max_unique_patterns(alphabet: Alphabet, taxa: usize) -> f64 {
    (alphabet.state_count() as f64).powi(taxa as i32)
}

fn preorder<F: FnMut(NodeId, NodeId)>(tree: &Tree, id: NodeId, f: &mut F) {
    for &c in &tree.node(id).children {
        f(c, id);
        preorder(tree, c, f);
    }
}

fn sample_cdf<R: Rng>(cum: &[f64], rng: &mut R) -> usize {
    let total = *cum.last().expect("non-empty cdf");
    let u: f64 = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
    match cum.binary_search_by(|x| x.partial_cmp(&u).unwrap()) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

fn sample_cum_weights<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::nucleotide::jc69;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn simulated_alignment_has_right_shape() {
        let mut rng = SmallRng::seed_from_u64(11);
        let tree = Tree::random(6, 0.1, &mut rng);
        let model = jc69();
        let aln = simulate_alignment(&tree, &model, &SiteRates::constant(), 200, &mut rng);
        assert_eq!(aln.taxon_count(), 6);
        assert_eq!(aln.site_count(), 200);
        assert_eq!(aln.alphabet(), Alphabet::Dna);
    }

    #[test]
    fn zero_branches_copy_root_state() {
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = Tree::ladder(4, 0.0);
        let model = jc69();
        let aln = simulate_alignment(&tree, &model, &SiteRates::constant(), 50, &mut rng);
        // All taxa identical at every site when branch lengths are zero.
        for s in 0..50 {
            let col = aln.column(s);
            assert!(col.iter().all(|&x| x == col[0]));
        }
    }

    #[test]
    fn long_branches_give_diverse_states() {
        let mut rng = SmallRng::seed_from_u64(13);
        let tree = Tree::ladder(8, 10.0); // essentially independent tips
        let model = jc69();
        let aln = simulate_alignment(&tree, &model, &SiteRates::constant(), 500, &mut rng);
        // Base composition at a tip should be near uniform.
        let mut counts = [0usize; 4];
        for &s in aln.row(7) {
            counts[s as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 60, "composition skew: {counts:?}");
        }
    }

    #[test]
    fn pattern_target_met_exactly() {
        let mut rng = SmallRng::seed_from_u64(17);
        let tree = Tree::random(8, 0.2, &mut rng);
        let model = jc69();
        let pats = simulate_patterns(&tree, &model, &SiteRates::constant(), 333, &mut rng);
        assert_eq!(pats.pattern_count(), 333);
        assert_eq!(pats.taxon_count(), 8);
    }

    #[test]
    fn patterns_are_unique() {
        let mut rng = SmallRng::seed_from_u64(19);
        let tree = Tree::random(5, 0.3, &mut rng);
        let model = jc69();
        let pats = simulate_patterns(&tree, &model, &SiteRates::constant(), 100, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for p in 0..pats.pattern_count() {
            assert!(seen.insert(pats.pattern(p).to_vec()), "duplicate pattern");
        }
    }
}
