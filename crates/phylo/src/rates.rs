//! Among-site rate variation.
//!
//! BEAGLE's API takes a vector of category rates and category weights;
//! this module produces the standard parameterizations of those vectors.

use crate::math::gamma::discrete_gamma_rates;

/// A discrete distribution of site-rate multipliers.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteRates {
    /// Rate multiplier per category (mean 1 under `weights`).
    pub rates: Vec<f64>,
    /// Probability of each category (sums to 1).
    pub weights: Vec<f64>,
}

impl SiteRates {
    /// A single rate category with rate 1 (no heterogeneity).
    pub fn constant() -> Self {
        Self {
            rates: vec![1.0],
            weights: vec![1.0],
        }
    }

    /// Yang's discrete-gamma model with shape `alpha` and `k` categories.
    pub fn discrete_gamma(alpha: f64, k: usize) -> Self {
        Self {
            rates: discrete_gamma_rates(alpha, k),
            weights: vec![1.0 / k as f64; k],
        }
    }

    /// Discrete gamma plus a proportion `p_inv` of invariant sites
    /// (the "+I+Γ" model): category 0 has rate 0 with weight `p_inv`, and the
    /// gamma rates are scaled by `1/(1−p_inv)` to keep the mean rate at 1.
    pub fn gamma_plus_invariant(alpha: f64, k: usize, p_inv: f64) -> Self {
        assert!((0.0..1.0).contains(&p_inv));
        let gamma = discrete_gamma_rates(alpha, k);
        let mut rates = vec![0.0];
        let mut weights = vec![p_inv];
        let scale = 1.0 / (1.0 - p_inv);
        for r in gamma {
            rates.push(r * scale);
            weights.push((1.0 - p_inv) / k as f64);
        }
        Self { rates, weights }
    }

    /// Number of categories.
    pub fn category_count(&self) -> usize {
        self.rates.len()
    }

    /// Mean rate under the category weights (should be 1).
    pub fn mean_rate(&self) -> f64 {
        self.rates
            .iter()
            .zip(&self.weights)
            .map(|(r, w)| r * w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one_category() {
        let r = SiteRates::constant();
        assert_eq!(r.category_count(), 1);
        assert!((r.mean_rate() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn discrete_gamma_mean_one() {
        for &alpha in &[0.2, 1.0, 5.0] {
            let r = SiteRates::discrete_gamma(alpha, 4);
            assert_eq!(r.category_count(), 4);
            assert!((r.mean_rate() - 1.0).abs() < 1e-12);
            let wsum: f64 = r.weights.iter().sum();
            assert!((wsum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn invariant_category_keeps_mean_one() {
        let r = SiteRates::gamma_plus_invariant(0.5, 4, 0.2);
        assert_eq!(r.category_count(), 5);
        assert_eq!(r.rates[0], 0.0);
        assert!((r.mean_rate() - 1.0).abs() < 1e-12);
        let wsum: f64 = r.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-12);
    }
}
