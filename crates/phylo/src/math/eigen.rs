//! Eigendecomposition of time-reversible substitution rate matrices.
//!
//! A reversible rate matrix `Q` with stationary distribution `π` satisfies
//! `π_i q_ij = π_j q_ji`, so `S = Π^{1/2} Q Π^{-1/2}` is symmetric and can be
//! diagonalized with the cyclic Jacobi algorithm. If `S = V Λ Vᵀ` then
//! `Q = (Π^{-1/2} V) Λ (Vᵀ Π^{1/2})`, giving right eigenvectors
//! `U = Π^{-1/2} V` and their inverse `U⁻¹ = Vᵀ Π^{1/2}` without a general
//! matrix inversion. Transition probabilities follow as
//! `P(t) = U · diag(exp(λ_i t)) · U⁻¹`, exactly the representation the
//! BEAGLE API consumes (`set_eigen_decomposition`).

use super::linalg::SquareMatrix;

/// Eigendecomposition of a reversible rate matrix, in the form BEAGLE wants:
/// right eigenvectors, inverse eigenvectors, and real eigenvalues.
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Right eigenvectors `U`, column `k` paired with `values[k]`.
    pub vectors: SquareMatrix,
    /// Inverse of the eigenvector matrix, `U⁻¹`.
    pub inverse_vectors: SquareMatrix,
    /// Real eigenvalues `λ_k` (a reversible Q has a real spectrum).
    pub values: Vec<f64>,
}

impl EigenDecomposition {
    /// Number of states.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Reconstruct `P(t) = U exp(Λ t) U⁻¹` for a branch length `t`
    /// (in expected substitutions per site, after Q normalization).
    pub fn transition_matrix(&self, t: f64) -> SquareMatrix {
        let n = self.dim();
        let mut p = SquareMatrix::zeros(n);
        // P_ij = Σ_k U_ik e^{λ_k t} (U⁻¹)_kj
        let exps: Vec<f64> = self.values.iter().map(|&l| (l * t).exp()).collect();
        for i in 0..n {
            for k in 0..n {
                let uik = self.vectors[(i, k)] * exps[k];
                if uik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    p[(i, j)] += uik * self.inverse_vectors[(k, j)];
                }
            }
        }
        // Clamp tiny negative round-off so downstream kernels see valid
        // probabilities; magnitudes here are ~1e-16.
        for x in p.as_mut_slice() {
            if *x < 0.0 && *x > -1e-10 {
                *x = 0.0;
            }
        }
        p
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvector `k` stored as
/// column `k`. Converges quadratically; for the ≤61-state matrices used in
/// phylogenetics this completes in a handful of sweeps.
pub fn jacobi_symmetric(a: &SquareMatrix) -> (Vec<f64>, SquareMatrix) {
    let n = a.dim();
    let mut a = a.clone();
    let mut v = SquareMatrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        // Off-diagonal Frobenius norm; stop when it is negligible relative
        // to the diagonal scale.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        let scale = (0..n).map(|i| a[(i, i)].abs()).fold(1e-300, f64::max);
        if off.sqrt() <= 1e-14 * scale.max(1.0) {
            break;
        }

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                let tau = s / (1.0 + c);

                a[(p, p)] = app - t * apq;
                a[(q, q)] = aqq + t * apq;
                a[(p, q)] = 0.0;
                a[(q, p)] = 0.0;

                for i in 0..n {
                    if i != p && i != q {
                        let aip = a[(i, p)];
                        let aiq = a[(i, q)];
                        a[(i, p)] = aip - s * (aiq + tau * aip);
                        a[(i, q)] = aiq + s * (aip - tau * aiq);
                        a[(p, i)] = a[(i, p)];
                        a[(q, i)] = a[(i, q)];
                    }
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip - s * (viq + tau * vip);
                    v[(i, q)] = viq + s * (vip - tau * viq);
                }
            }
        }
    }

    let values = (0..n).map(|i| a[(i, i)]).collect();
    (values, v)
}

/// Decompose a reversible rate matrix `q` with stationary frequencies `pi`.
///
/// Panics if dimensions disagree. Reversibility is the caller's contract;
/// mild asymmetry from rounding is symmetrized away.
pub fn decompose_reversible(q: &SquareMatrix, pi: &[f64]) -> EigenDecomposition {
    let n = q.dim();
    assert_eq!(pi.len(), n, "frequency vector must match matrix dimension");

    let sqrt_pi: Vec<f64> = pi.iter().map(|&p| p.max(0.0).sqrt()).collect();

    // S = Π^{1/2} Q Π^{-1/2}, symmetrized to kill rounding noise.
    let mut s = SquareMatrix::zeros(n);
    for i in 0..n {
        for j in 0..n {
            if sqrt_pi[j] > 0.0 {
                s[(i, j)] = sqrt_pi[i] * q[(i, j)] / sqrt_pi[j];
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let m = 0.5 * (s[(i, j)] + s[(j, i)]);
            s[(i, j)] = m;
            s[(j, i)] = m;
        }
    }

    let (values, v) = jacobi_symmetric(&s);

    // U = Π^{-1/2} V ; U⁻¹ = Vᵀ Π^{1/2}
    let mut vectors = SquareMatrix::zeros(n);
    let mut inverse_vectors = SquareMatrix::zeros(n);
    for i in 0..n {
        for k in 0..n {
            vectors[(i, k)] = if sqrt_pi[i] > 0.0 {
                v[(i, k)] / sqrt_pi[i]
            } else {
                0.0
            };
            inverse_vectors[(k, i)] = v[(i, k)] * sqrt_pi[i];
        }
    }

    EigenDecomposition {
        vectors,
        inverse_vectors,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::linalg::expm;

    fn jc69_q() -> (SquareMatrix, Vec<f64>) {
        // Jukes-Cantor: all off-diagonal rates equal, normalized to one
        // expected substitution per unit time.
        let mut q = SquareMatrix::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                q[(i, j)] = if i == j { -1.0 } else { 1.0 / 3.0 };
            }
        }
        (q, vec![0.25; 4])
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let mut d = SquareMatrix::zeros(3);
        d[(0, 0)] = 3.0;
        d[(1, 1)] = -1.0;
        d[(2, 2)] = 7.0;
        let (vals, vecs) = jacobi_symmetric(&d);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] + 1.0).abs() < 1e-12);
        assert!((sorted[1] - 3.0).abs() < 1e-12);
        assert!((sorted[2] - 7.0).abs() < 1e-12);
        // Eigenvectors of a diagonal matrix are (signed) unit vectors.
        for k in 0..3 {
            let col: Vec<f64> = (0..3).map(|i| vecs[(i, k)]).collect();
            let norm: f64 = col.iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_reconstructs_symmetric_matrix() {
        let s = SquareMatrix::from_rows(3, &[2.0, -1.0, 0.5, -1.0, 3.0, 0.25, 0.5, 0.25, -1.5]);
        let (vals, v) = jacobi_symmetric(&s);
        // Reconstruct V Λ Vᵀ.
        let mut lam = SquareMatrix::zeros(3);
        for i in 0..3 {
            lam[(i, i)] = vals[i];
        }
        let rec = v.matmul(&lam).matmul(&v.transpose());
        assert!(
            rec.max_abs_diff(&s) < 1e-10,
            "diff {}",
            rec.max_abs_diff(&s)
        );
    }

    #[test]
    fn jc69_transition_matrix_matches_analytic() {
        let (q, pi) = jc69_q();
        let ed = decompose_reversible(&q, &pi);
        for &t in &[0.0, 0.01, 0.1, 0.5, 1.0, 5.0] {
            let p = ed.transition_matrix(t);
            // Analytic JC69: p_same = 1/4 + 3/4 e^{-4t/3}, p_diff = 1/4 - 1/4 e^{-4t/3}
            let e = (-4.0 * t / 3.0_f64).exp();
            let same = 0.25 + 0.75 * e;
            let diff = 0.25 - 0.25 * e;
            for i in 0..4 {
                for j in 0..4 {
                    let expect = if i == j { same } else { diff };
                    assert!(
                        (p[(i, j)] - expect).abs() < 1e-10,
                        "P[{i}{j}]({t}) = {} want {}",
                        p[(i, j)],
                        expect
                    );
                }
            }
        }
    }

    #[test]
    fn eigen_route_matches_expm_route() {
        // A reversible HKY-ish matrix with uneven frequencies.
        let pi = [0.1, 0.2, 0.3, 0.4];
        let kappa = 2.5;
        let mut q = SquareMatrix::zeros(4);
        // order A, C, G, T; transitions: A<->G (0,2), C<->T (1,3)
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let transition =
                    (i, j) == (0, 2) || (i, j) == (2, 0) || (i, j) == (1, 3) || (i, j) == (3, 1);
                q[(i, j)] = if transition { kappa } else { 1.0 } * pi[j];
            }
        }
        for i in 0..4 {
            let row_sum: f64 = (0..4).filter(|&j| j != i).map(|j| q[(i, j)]).sum();
            q[(i, i)] = -row_sum;
        }
        let ed = decompose_reversible(&q, &pi);
        for &t in &[0.05, 0.3, 1.2] {
            let mut qt = q.clone();
            qt.scale(t);
            let p_expm = expm(&qt);
            let p_eig = ed.transition_matrix(t);
            assert!(p_expm.max_abs_diff(&p_eig) < 1e-9);
        }
    }

    #[test]
    fn transition_rows_sum_to_one() {
        let (q, pi) = jc69_q();
        let ed = decompose_reversible(&q, &pi);
        let p = ed.transition_matrix(0.37);
        for i in 0..4 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_branch_gives_identity() {
        let (q, pi) = jc69_q();
        let ed = decompose_reversible(&q, &pi);
        let p = ed.transition_matrix(0.0);
        assert!(p.max_abs_diff(&SquareMatrix::identity(4)) < 1e-12);
    }
}
