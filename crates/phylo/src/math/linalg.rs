//! Small dense matrix algebra for substitution-model work.
//!
//! Rate matrices in phylogenetics are tiny (4×4 for nucleotides, 20×20 for
//! amino acids, 61×61 for codons), so everything here is a straightforward
//! row-major `Vec<f64>` implementation with no blocking or SIMD — the time
//! spent in this module is negligible next to the partial-likelihood kernels.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major, square matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Create an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major slice. Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must have n*n entries");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Dimension of the matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Row-major view of the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &SquareMatrix) -> SquareMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch in matmul");
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * rrow[j];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "dimension mismatch in matvec");
        (0..self.n)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> SquareMatrix {
        let n = self.n;
        let mut out = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scale every entry by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Maximum absolute difference to another matrix (∞-norm of the difference).
    pub fn max_abs_diff(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Sum of absolute off-diagonal entries in row `i`.
    pub fn offdiag_row_sum(&self, i: usize) -> f64 {
        self.row(i)
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &x)| x.abs())
            .sum()
    }
}

impl Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl IndexMut<(usize, usize)> for SquareMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

impl fmt::Debug for SquareMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SquareMatrix({}x{}) [", self.n, self.n)?;
        for i in 0..self.n {
            write!(f, "  ")?;
            for j in 0..self.n {
                write!(f, "{:10.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// Matrix exponential by scaling-and-squaring with a Taylor core.
///
/// Used only in tests and as a cross-check for the eigendecomposition route;
/// production transition matrices always come from the eigen path, which is
/// what BEAGLE itself does.
pub fn expm(a: &SquareMatrix) -> SquareMatrix {
    let n = a.dim();
    // Scale so the norm is small, exponentiate a Taylor series, square back.
    let norm = a.max_abs() * n as f64;
    let squarings = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let mut scaled = a.clone();
    scaled.scale(0.5_f64.powi(squarings as i32));

    let mut result = SquareMatrix::identity(n);
    let mut term = SquareMatrix::identity(n);
    // 18 terms is far beyond double-precision convergence for norm <= 0.5.
    for k in 1..=18 {
        term = term.matmul(&scaled);
        term.scale(1.0 / k as f64);
        for (r, t) in result.data.iter_mut().zip(&term.data) {
            *r += t;
        }
    }
    for _ in 0..squarings {
        result = result.matmul(&result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_identity() {
        let i4 = SquareMatrix::identity(4);
        let m = SquareMatrix::from_rows(4, &(0..16).map(|x| x as f64).collect::<Vec<_>>());
        assert_eq!(i4.matmul(&m), m);
        assert_eq!(m.matmul(&i4), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        let b = SquareMatrix::from_rows(2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = SquareMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = SquareMatrix::from_rows(3, &(0..9).map(|x| x as f64).collect::<Vec<_>>());
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = SquareMatrix::zeros(5);
        let e = expm(&z);
        assert!(e.max_abs_diff(&SquareMatrix::identity(5)) < 1e-14);
    }

    #[test]
    fn expm_diagonal() {
        // exp(diag(a, b)) = diag(e^a, e^b)
        let mut d = SquareMatrix::zeros(2);
        d[(0, 0)] = 1.0;
        d[(1, 1)] = -2.0;
        let e = expm(&d);
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14);
        assert!(e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn expm_nilpotent() {
        // For N = [[0,1],[0,0]], exp(N) = I + N.
        let mut nmat = SquareMatrix::zeros(2);
        nmat[(0, 1)] = 1.0;
        let e = expm(&nmat);
        assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((e[(0, 1)] - 1.0).abs() < 1e-14);
        assert!((e[(1, 1)] - 1.0).abs() < 1e-14);
        assert!(e[(1, 0)].abs() < 1e-14);
    }
}
