//! Numerical routines backing the substitution models: small dense linear
//! algebra, eigendecomposition of reversible rate matrices, and the gamma
//! special functions needed for discrete rate heterogeneity.

pub mod eigen;
pub mod gamma;
pub mod linalg;

pub use eigen::{decompose_reversible, EigenDecomposition};
pub use gamma::discrete_gamma_rates;
pub use linalg::SquareMatrix;
