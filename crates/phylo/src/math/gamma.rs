//! Gamma-function machinery for among-site rate variation.
//!
//! Phylogenetic models almost universally use Yang's (1994) discrete-gamma
//! approximation: site rates are drawn from a Gamma(α, α) distribution
//! (mean 1) discretized into `k` equal-probability categories, each category
//! represented by its mean rate. Computing those means needs the log-gamma
//! function, the regularized incomplete gamma `P(a, x)`, and its inverse
//! (the gamma quantile function) — all implemented here from scratch.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 relative error for positive arguments, which is far
/// beyond what rate discretization requires.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the g=7, 9-term Lanczos approximation.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (the classic Numerical-Recipes split; both converge fast in their domain).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction of Q(a, x).
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Quantile (inverse CDF) of the Gamma(shape `a`, rate `b`) distribution.
///
/// Solves `P(a, b·x) = p` by bisection refined with Newton steps. Robust for
/// the full range of shapes used in rate heterogeneity (α from ~0.05 to ~100).
pub fn gamma_quantile(p: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "quantile needs p in [0,1)");
    assert!(a > 0.0 && b > 0.0);
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root in standard (rate-1) space.
    let mut lo = 0.0_f64;
    let mut hi = a.max(1.0);
    while gamma_p(a, hi) < p {
        hi *= 2.0;
        if hi > 1e10 {
            break;
        }
    }
    let mut x = 0.5 * (lo + hi);
    for _ in 0..200 {
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step using the gamma pdf as derivative; fall back to
        // bisection when the step leaves the bracket.
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma(a);
        let pdf = ln_pdf.exp();
        let newton = if pdf > 0.0 { x - f / pdf } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-14 * x.max(1e-14) {
            break;
        }
    }
    x / b
}

/// Mean rates for Yang's discrete-gamma model with `k` equal-probability
/// categories and shape `alpha` (Gamma(α, α), mean 1).
///
/// Category `i` covers quantiles `(i/k, (i+1)/k)`; its representative rate is
/// the conditional mean `k · [P(α+1, α·q_{i+1}) − P(α+1, α·q_i)]`, using the
/// identity ∫ x·gammapdf(α,α) over a quantile slice = P(α+1, ·) difference.
/// The returned rates always average exactly 1 (renormalized).
pub fn discrete_gamma_rates(alpha: f64, k: usize) -> Vec<f64> {
    assert!(k >= 1);
    assert!(alpha > 0.0);
    if k == 1 {
        return vec![1.0];
    }
    // Cut points between categories, in rate space.
    let cuts: Vec<f64> = (1..k)
        .map(|i| gamma_quantile(i as f64 / k as f64, alpha, alpha))
        .collect();
    let mut rates = Vec::with_capacity(k);
    let mut prev_p1 = 0.0; // P(alpha+1, alpha * cut) at lower edge
    for i in 0..k {
        let upper_p1 = if i == k - 1 {
            1.0
        } else {
            gamma_p(alpha + 1.0, alpha * cuts[i])
        };
        rates.push((upper_p1 - prev_p1) * k as f64);
        prev_p1 = upper_p1;
    }
    // Renormalize to a mean of exactly 1 (guards against quantile round-off).
    let mean: f64 = rates.iter().sum::<f64>() / k as f64;
    for r in &mut rates {
        *r /= mean;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!((lg - f.ln()).abs() < 1e-12, "n={}", n + 1);
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // For a = 1 the gamma CDF is 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - f64::exp(-x))).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 * 0.1;
            let p = gamma_p(2.5, x);
            assert!(p >= prev && (0.0..=1.0).contains(&p));
            prev = p;
        }
        assert!(prev > 0.998, "P(2.5, 9.9) ≈ 0.99864");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &a in &[0.3, 1.0, 2.0, 7.5] {
            for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
                let x = gamma_quantile(p, a, a);
                assert!((gamma_p(a, a * x) - p).abs() < 1e-9, "a={a} p={p}");
            }
        }
    }

    #[test]
    fn discrete_gamma_mean_one() {
        for &alpha in &[0.1, 0.5, 1.0, 2.0, 10.0] {
            for &k in &[2usize, 4, 8] {
                let rates = discrete_gamma_rates(alpha, k);
                let mean: f64 = rates.iter().sum::<f64>() / k as f64;
                assert!((mean - 1.0).abs() < 1e-12, "alpha={alpha} k={k}");
                // Rates sorted ascending by construction.
                for w in rates.windows(2) {
                    assert!(w[0] <= w[1]);
                }
            }
        }
    }

    #[test]
    fn discrete_gamma_known_values() {
        // Well-known reference: alpha = 0.5, 4 categories (e.g. PAML output):
        // rates ≈ 0.0334, 0.2519, 0.8203, 2.8944
        let r = discrete_gamma_rates(0.5, 4);
        let expect = [0.0334, 0.2519, 0.8203, 2.8944];
        for (a, e) in r.iter().zip(&expect) {
            assert!((a - e).abs() < 2e-3, "got {a} want {e}");
        }
    }

    #[test]
    fn discrete_gamma_large_alpha_converges_to_uniform() {
        let r = discrete_gamma_rates(500.0, 4);
        for x in &r {
            assert!((x - 1.0).abs() < 0.1, "rate {x} should be near 1");
        }
    }

    #[test]
    fn single_category_is_rate_one() {
        assert_eq!(discrete_gamma_rates(0.7, 1), vec![1.0]);
    }
}
