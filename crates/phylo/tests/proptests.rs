//! Property-based tests for the phylogenetics substrate.

use beagle_phylo::alphabet::Alphabet;
use beagle_phylo::clades::robinson_foulds;
use beagle_phylo::math::eigen::decompose_reversible;
use beagle_phylo::math::gamma::{discrete_gamma_rates, gamma_p, gamma_quantile};
use beagle_phylo::math::linalg::SquareMatrix;
use beagle_phylo::models::nucleotide::gtr;
use beagle_phylo::newick::{from_newick, to_newick};
use beagle_phylo::Tree;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Newick serialization roundtrips arbitrary random trees.
    #[test]
    fn newick_roundtrip(taxa in 2usize..40, seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = Tree::random(taxa, 0.2, &mut rng);
        let names: Vec<String> = (0..taxa).map(|i| format!("tx{i}")).collect();
        let text = to_newick(&tree, &names);
        let (parsed, parsed_names) = from_newick(&text).unwrap();
        prop_assert_eq!(parsed.taxon_count(), taxa);
        // Same topology: serialize again with the same name order.
        let text2 = to_newick(&parsed, &parsed_names);
        prop_assert_eq!(text, text2);
        // Tree length preserved to parsing precision.
        prop_assert!((tree.tree_length() - parsed.tree_length()).abs() < 1e-9);
    }

    /// GTR transition matrices are stochastic and satisfy detailed balance
    /// for arbitrary parameters.
    #[test]
    fn gtr_transition_matrices_stochastic(
        r1 in 0.1f64..10.0, r2 in 0.1f64..10.0, r3 in 0.1f64..10.0,
        r4 in 0.1f64..10.0, r5 in 0.1f64..10.0, r6 in 0.1f64..10.0,
        f1 in 0.1f64..1.0, f2 in 0.1f64..1.0, f3 in 0.1f64..1.0, f4 in 0.1f64..1.0,
        t in 0.0f64..5.0,
    ) {
        let total = f1 + f2 + f3 + f4;
        let pi = [f1 / total, f2 / total, f3 / total, f4 / total];
        let model = gtr(&[r1, r2, r3, r4, r5, r6], &pi);
        let p = model.transition_matrix(t);
        for i in 0..4 {
            let row_sum: f64 = p.row(i).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9, "row {i} sums to {row_sum}");
            for j in 0..4 {
                prop_assert!(p[(i, j)] >= 0.0);
                // Detailed balance of the process: π_i P_ij = π_j P_ji.
                prop_assert!((pi[i] * p[(i, j)] - pi[j] * p[(j, i)]).abs() < 1e-9);
            }
        }
    }

    /// Chapman–Kolmogorov: P(t1) · P(t2) = P(t1 + t2).
    #[test]
    fn chapman_kolmogorov(
        t1 in 0.01f64..2.0,
        t2 in 0.01f64..2.0,
        kappa in 0.2f64..8.0,
    ) {
        let model = beagle_phylo::models::nucleotide::k80(kappa);
        let p1 = model.transition_matrix(t1);
        let p2 = model.transition_matrix(t2);
        let p12 = model.transition_matrix(t1 + t2);
        let prod = p1.matmul(&p2);
        prop_assert!(prod.max_abs_diff(&p12) < 1e-9);
    }

    /// Eigendecomposition reconstructs the rate matrix: U Λ U⁻¹ = Q.
    #[test]
    fn eigen_reconstructs_q(
        r1 in 0.1f64..5.0, r2 in 0.1f64..5.0, r3 in 0.1f64..5.0,
        r4 in 0.1f64..5.0, r5 in 0.1f64..5.0, r6 in 0.1f64..5.0,
    ) {
        let pi = [0.25; 4];
        let model = gtr(&[r1, r2, r3, r4, r5, r6], &pi);
        let eig = decompose_reversible(model.rate_matrix(), &pi);
        let mut lam = SquareMatrix::zeros(4);
        for i in 0..4 {
            lam[(i, i)] = eig.values[i];
        }
        let rec = eig.vectors.matmul(&lam).matmul(&eig.inverse_vectors);
        prop_assert!(rec.max_abs_diff(model.rate_matrix()) < 1e-9);
    }

    /// Gamma quantile inverts the gamma CDF across shapes.
    #[test]
    fn gamma_quantile_inverts(a in 0.05f64..50.0, p in 0.001f64..0.999) {
        let x = gamma_quantile(p, a, a);
        prop_assert!((gamma_p(a, a * x) - p).abs() < 1e-7, "a={a} p={p} x={x}");
    }

    /// Discrete-gamma rates are sorted, positive, and mean-1 for any shape.
    #[test]
    fn discrete_gamma_invariants(alpha in 0.05f64..50.0, k in 1usize..12) {
        let rates = discrete_gamma_rates(alpha, k);
        prop_assert_eq!(rates.len(), k);
        let mean: f64 = rates.iter().sum::<f64>() / k as f64;
        prop_assert!((mean - 1.0).abs() < 1e-10);
        for w in rates.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(rates[0] >= 0.0);
    }

    /// RF distance is a metric: non-negative, symmetric, zero on identity,
    /// and invariant to branch lengths.
    #[test]
    fn rf_metric_properties(taxa in 4usize..20, s1 in 0u64..500, s2 in 0u64..500) {
        let mut r1 = SmallRng::seed_from_u64(s1);
        let mut r2 = SmallRng::seed_from_u64(s2);
        let a = Tree::random(taxa, 0.1, &mut r1);
        let b = Tree::random(taxa, 0.1, &mut r2);
        prop_assert_eq!(robinson_foulds(&a, &a), 0);
        prop_assert_eq!(robinson_foulds(&a, &b), robinson_foulds(&b, &a));
        prop_assert!(robinson_foulds(&a, &b) <= 2 * (taxa.saturating_sub(2)));
    }

    /// Codon encode/decode roundtrips arbitrary nucleotide triplets that are
    /// not stop codons.
    #[test]
    fn codon_roundtrip_non_stop(b1 in 0usize..4, b2 in 0usize..4, b3 in 0usize..4) {
        let chars = [b'A', b'C', b'G', b'T'];
        let trip = [chars[b1], chars[b2], chars[b3]];
        let state = Alphabet::Codon.encode(&trip);
        let is_stop = matches!(&trip, b"TAA" | b"TAG" | b"TGA");
        if is_stop {
            prop_assert_eq!(state, beagle_phylo::alphabet::GAP_STATE);
        } else {
            let decoded = Alphabet::Codon.decode(state);
            prop_assert_eq!(decoded.as_bytes(), &trip);
        }
    }
}
