//! Integration tests: every CPU implementation must reproduce the
//! log-likelihood of the slow pruning oracle in `beagle-phylo`, across
//! models, state counts, rate categories, precisions, and scaling modes.

use beagle_core::{BeagleInstance, BufferId, Flags, InstanceConfig, Operation, ScalingMode};
use beagle_cpu::{CpuFactory, ThreadingModel};
use beagle_phylo::likelihood::log_likelihood;
use beagle_phylo::models::{codon, nucleotide};
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drive a BEAGLE instance through a full likelihood evaluation of
/// (tree, model, rates, patterns), the way a client program would.
fn beagle_log_likelihood(
    inst: &mut dyn BeagleInstance,
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    patterns: &SitePatterns,
    scaled: bool,
) -> f64 {
    let eig = model.eigen();
    inst.set_eigen_decomposition(
        0,
        eig.vectors.as_slice(),
        eig.inverse_vectors.as_slice(),
        &eig.values,
    )
    .unwrap();
    inst.set_state_frequencies(0, model.frequencies()).unwrap();
    inst.set_category_rates(&rates.rates).unwrap();
    inst.set_category_weights(0, &rates.weights).unwrap();
    inst.set_pattern_weights(patterns.weights()).unwrap();
    for tip in 0..tree.taxon_count() {
        inst.set_tip_states(tip, &patterns.tip_states(tip)).unwrap();
    }
    let branches = tree.branch_assignments();
    let (idx, len): (Vec<usize>, Vec<f64>) = branches.iter().copied().unzip();
    inst.update_transition_matrices(0, &idx, &len).unwrap();

    let cumulative = inst.config().scale_buffer_count.checked_sub(1);
    let ops: Vec<Operation> = tree
        .operation_schedule()
        .iter()
        .map(|e| {
            let op = Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
            if scaled {
                op.with_scaling(e.destination)
            } else {
                op
            }
        })
        .collect();
    inst.update_partials(&ops).unwrap();

    let cum_scale = if scaled {
        let c = cumulative.unwrap();
        inst.reset_scale_factors(c).unwrap();
        let scale_bufs: Vec<usize> = ops.iter().map(|o| o.destination).collect();
        inst.accumulate_scale_factors(&scale_bufs, c).unwrap();
        ScalingMode::cumulative(c)
    } else {
        ScalingMode::None
    };
    inst.integrate_root(BufferId(tree.root()), BufferId(0), BufferId(0), cum_scale)
        .unwrap()
}

fn make_instance(
    model: ThreadingModel,
    vectorized: bool,
    config: &InstanceConfig,
    single: bool,
) -> Box<dyn BeagleInstance> {
    let f = CpuFactory::with_threads(model, vectorized, 4);
    let prefs = if single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    f.create(config, prefs, Flags::NONE).unwrap()
}

use beagle_core::manager::ImplementationFactory;

struct Case {
    tree: Tree,
    model: ReversibleModel,
    rates: SiteRates,
    patterns: SitePatterns,
}

fn nucleotide_case(taxa: usize, sites: usize, categories: usize, seed: u64) -> Case {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tree = Tree::random(taxa, 0.15, &mut rng);
    let model = nucleotide::hky85(2.5, &[0.3, 0.2, 0.25, 0.25]);
    let rates = if categories > 1 {
        SiteRates::discrete_gamma(0.5, categories)
    } else {
        SiteRates::constant()
    };
    let aln = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    Case {
        tree,
        model,
        rates,
        patterns,
    }
}

fn codon_case(taxa: usize, sites: usize, seed: u64) -> Case {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tree = Tree::random(taxa, 0.1, &mut rng);
    let model = codon::gy94(
        codon::CodonModelParams {
            kappa: 2.0,
            omega: 0.3,
        },
        &codon::uniform_codon_frequencies(),
    );
    let rates = SiteRates::constant();
    let aln = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    Case {
        tree,
        model,
        rates,
        patterns,
    }
}

fn check_all_models(case: &Case, tol_double: f64, tol_single: f64) {
    let oracle = log_likelihood(&case.tree, &case.model, &case.rates, &case.patterns);
    assert!(oracle.is_finite());
    let config = InstanceConfig::for_tree(
        case.tree.taxon_count(),
        case.patterns.pattern_count(),
        case.model.state_count(),
        case.rates.category_count(),
    );
    let models = [
        ThreadingModel::Serial,
        ThreadingModel::Futures,
        ThreadingModel::ThreadCreate,
        ThreadingModel::ThreadPool,
    ];
    for m in models {
        for vectorized in [false, true] {
            if vectorized && case.model.state_count() != 4 {
                continue;
            }
            // Double precision, unscaled.
            let mut inst = make_instance(m, vectorized, &config, false);
            // Force threading even for small pattern counts so the parallel
            // paths are actually exercised.
            let lnl = beagle_log_likelihood(
                inst.as_mut(),
                &case.tree,
                &case.model,
                &case.rates,
                &case.patterns,
                false,
            );
            assert!(
                (lnl - oracle).abs() < tol_double,
                "{m:?} vec={vectorized} f64: {lnl} vs oracle {oracle}"
            );
            // Single precision (scaled, so f32 stays in range).
            let mut inst = make_instance(m, vectorized, &config, true);
            let lnl = beagle_log_likelihood(
                inst.as_mut(),
                &case.tree,
                &case.model,
                &case.rates,
                &case.patterns,
                true,
            );
            let rel = ((lnl - oracle) / oracle).abs();
            assert!(
                rel < tol_single,
                "{m:?} vec={vectorized} f32 scaled: {lnl} vs oracle {oracle} (rel {rel})"
            );
        }
    }
}

#[test]
fn nucleotide_single_category_all_models() {
    check_all_models(&nucleotide_case(8, 200, 1, 42), 1e-8, 1e-4);
}

#[test]
fn nucleotide_gamma_rates_all_models() {
    check_all_models(&nucleotide_case(12, 300, 4, 43), 1e-8, 1e-4);
}

#[test]
fn codon_all_models() {
    check_all_models(&codon_case(6, 80, 44), 1e-7, 1e-4);
}

#[test]
fn large_pattern_count_exercises_real_threading() {
    // Above the 512-pattern threshold so thread-create/pool genuinely split.
    let case = nucleotide_case(8, 4000, 4, 45);
    check_all_models(&case, 1e-7, 1e-4);
    assert!(case.patterns.pattern_count() > 512);
}

#[test]
fn scaled_equals_unscaled_in_double() {
    let case = nucleotide_case(10, 400, 4, 46);
    let config =
        InstanceConfig::for_tree(case.tree.taxon_count(), case.patterns.pattern_count(), 4, 4);
    let mut a = make_instance(ThreadingModel::Serial, false, &config, false);
    let unscaled = beagle_log_likelihood(
        a.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    let mut b = make_instance(ThreadingModel::Serial, false, &config, false);
    let scaled = beagle_log_likelihood(
        b.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        true,
    );
    assert!((unscaled - scaled).abs() < 1e-9, "{unscaled} vs {scaled}");
}

#[test]
fn deep_tree_underflows_without_scaling_but_not_with() {
    // 128 taxa in single precision: partials underflow f32 without rescaling.
    let mut rng = SmallRng::seed_from_u64(47);
    let tree = Tree::random(128, 0.4, &mut rng);
    let model = nucleotide::jc69();
    let rates = SiteRates::constant();
    let aln = simulate_alignment(&tree, &model, &rates, 50, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    let config = InstanceConfig::for_tree(128, patterns.pattern_count(), 4, 1);

    let mut scaled = make_instance(ThreadingModel::Serial, false, &config, true);
    let lnl = beagle_log_likelihood(scaled.as_mut(), &tree, &model, &rates, &patterns, true);
    let oracle = log_likelihood(&tree, &model, &rates, &patterns);
    assert!(
        ((lnl - oracle) / oracle).abs() < 1e-3,
        "scaled f32 {lnl} vs oracle {oracle}"
    );
}

#[test]
fn tip_partials_match_tip_states() {
    // Ambiguity-free tip partials must give the same likelihood as compact
    // states.
    let case = nucleotide_case(6, 150, 2, 48);
    let config = InstanceConfig::for_tree(6, case.patterns.pattern_count(), 4, 2);
    let oracle = log_likelihood(&case.tree, &case.model, &case.rates, &case.patterns);

    let f = CpuFactory::with_threads(ThreadingModel::Serial, false, 1);
    let mut inst = f.create(&config, Flags::NONE, Flags::NONE).unwrap();
    let eig = case.model.eigen();
    inst.set_eigen_decomposition(
        0,
        eig.vectors.as_slice(),
        eig.inverse_vectors.as_slice(),
        &eig.values,
    )
    .unwrap();
    inst.set_state_frequencies(0, case.model.frequencies())
        .unwrap();
    inst.set_category_rates(&case.rates.rates).unwrap();
    inst.set_category_weights(0, &case.rates.weights).unwrap();
    inst.set_pattern_weights(case.patterns.weights()).unwrap();
    let np = case.patterns.pattern_count();
    for tip in 0..6 {
        let states = case.patterns.tip_states(tip);
        let mut tp = vec![0.0; np * 4];
        for (p, &st) in states.iter().enumerate() {
            tp[p * 4 + st as usize] = 1.0;
        }
        inst.set_tip_partials(tip, &tp).unwrap();
    }
    let (idx, len): (Vec<usize>, Vec<f64>) = case.tree.branch_assignments().iter().copied().unzip();
    inst.update_transition_matrices(0, &idx, &len).unwrap();
    let ops: Vec<Operation> = case
        .tree
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();
    inst.update_partials(&ops).unwrap();
    let lnl = inst
        .integrate_root(
            BufferId(case.tree.root()),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        )
        .unwrap();
    assert!((lnl - oracle).abs() < 1e-8, "{lnl} vs {oracle}");
}

#[test]
fn site_log_likelihoods_sum_to_total() {
    let case = nucleotide_case(7, 120, 2, 49);
    let config = InstanceConfig::for_tree(7, case.patterns.pattern_count(), 4, 2);
    let mut inst = make_instance(ThreadingModel::ThreadPool, false, &config, false);
    let total = beagle_log_likelihood(
        inst.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    let site = inst.get_site_log_likelihoods().unwrap();
    let manual: f64 = site
        .iter()
        .zip(case.patterns.weights())
        .map(|(l, w)| l * w)
        .sum();
    assert!((total - manual).abs() < 1e-9);
}

#[test]
fn edge_likelihood_matches_root_likelihood() {
    // Integrating at the edge above the root's first child must equal the
    // root integration (reversibility / pulley principle).
    let case = nucleotide_case(9, 250, 2, 50);
    let config = InstanceConfig::for_tree(9, case.patterns.pattern_count(), 4, 2);
    let mut inst = make_instance(ThreadingModel::Serial, false, &config, false);
    let total = beagle_log_likelihood(
        inst.as_mut(),
        &case.tree,
        &case.model,
        &case.rates,
        &case.patterns,
        false,
    );
    // Root children: integrate parent=childA-complement? The standard edge
    // check: L(edge between root-child c and the rest) — here we use the
    // root's own buffer as parent and one tip as child with its matrix,
    // which equals the full likelihood only for the root edge. Instead we
    // verify a weaker but exact invariant: edge integration with the root's
    // *other* child. Build: parent = sibling subtree partials, child = c.
    let root = case.tree.root();
    let ch = case.tree.node(root).children.clone();
    // For a root with children (a, b): L = Σ π ∘ (P_a L_a) ∘ (P_b L_b)
    // = edge integration with parent partials "P_a L_a only" is not directly
    // exposed; instead check edge(parent=root_buffer with identity-free
    // child) — simplest exact identity: edge likelihood between the root
    // buffer and a fictitious child with zero-length branch.
    let zero_matrix_index = ch[0]; // reuse a matrix slot
    inst.update_transition_matrices(0, &[zero_matrix_index], &[0.0])
        .unwrap();
    // Need a child whose partials are all-ones: use tip partials trick on a
    // spare buffer.
    let spare = root; // root buffer holds partials; use tip 0 gap states
    let _ = spare;
    let np = case.patterns.pattern_count();
    let ones = vec![1.0; config.partials_len()];
    // Write into an unused internal buffer slot if available: reuse child2
    // buffer? All buffers are used. Use set_partials on tip 0's buffer (it
    // holds compact states; overwrite is allowed and we are done with it).
    inst.set_partials(0, &ones).unwrap();
    let edge = inst
        .integrate_edge(
            BufferId(root),
            BufferId(0),
            BufferId(zero_matrix_index),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        )
        .unwrap();
    assert!((edge - total).abs() < 1e-8, "edge {edge} vs root {total}");
    let _ = np;
}
