//! SIMD/scalar parity: every kernel in the dispatch table must agree with
//! the scalar oracle across state counts, precisions, gap states, and
//! near-zero/denormal inputs — and a full likelihood run must agree between
//! the forced-scalar and the vectorized dispatch paths.
//!
//! Tolerances: the 4-state AVX2 specializations use the same FMA chain as
//! the portable kernels, so those pairs are compared bit-for-bit. The wide
//! (arbitrary state count) AVX2 kernels use a 4-accumulator tree reduction
//! whose association differs from the scalar left-to-right sum, so they are
//! compared to within a few ulps scaled by the dot length.

use beagle_core::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use beagle_core::flags::Flags;
use beagle_core::real::Real;
use beagle_core::{Operation, GAP_STATE};
use beagle_cpu::instance::Threading;
use beagle_cpu::simd::{avx2_available, DispatchKind, DispatchReal};
use beagle_cpu::{kernels, CpuInstance};
use proptest::prelude::*;

const STATE_COUNTS: [usize; 4] = [2, 4, 20, 61];

/// Relative tolerance for a dot product of length `s` in precision `T`:
/// reassociation + FMA contraction can each contribute O(s) ulps.
fn dot_tol<T: Real>(s: usize) -> f64 {
    let eps = if std::mem::size_of::<T>() == 8 {
        f64::EPSILON
    } else {
        f32::EPSILON as f64
    };
    8.0 * s as f64 * eps
}

fn assert_close<T: Real>(a: &[T], b: &[T], s: usize, what: &str) {
    let tol = dot_tol::<T>(s);
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let (x, y) = (x.to_f64(), y.to_f64());
        if x == y {
            continue; // also covers matching ±inf (log of a zero-sum site)
        }
        let scale = x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
        assert!(
            (x - y).abs() <= tol * scale.max(1e-30),
            "{what}: index {i} diverged: {x:e} vs {y:e}"
        );
    }
}

/// Likelihood-like value: mostly O(1), sometimes near-zero (down in the
/// range rescaling exists to rescue) or exactly zero. The `single` variant
/// keeps the tiny band representable as a normal f32.
fn value(single: bool) -> impl Strategy<Value = f64> {
    let (tiny_lo, tiny_hi) = if single {
        (1e-35, 1e-30)
    } else {
        (1e-300, 1e-250)
    };
    prop_oneof![
        1e-6f64..1.0,
        1e-6f64..1.0,
        1e-6f64..1.0,
        tiny_lo..tiny_hi,
        Just(0.0f64),
    ]
}

fn padded_vec<T: Real>(values: &[f64], s: usize, sp: usize) -> Vec<T> {
    let n = values.len() / s;
    let mut out = vec![T::ZERO; n * sp];
    for p in 0..n {
        for k in 0..s {
            out[p * sp + k] = T::from_f64(values[p * s + k]);
        }
    }
    out
}

fn states_strategy(s: usize, n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(
        prop_oneof![0..s as u32, 0..s as u32, 0..s as u32, Just(GAP_STATE)],
        n..=n,
    )
}

/// Every dispatch path available on this host (scalar always; avx2 when
/// detected — the table request degrades to portable otherwise, which
/// would silently test nothing, so it is gated explicitly).
fn paths() -> Vec<DispatchKind> {
    let mut v = vec![DispatchKind::Scalar, DispatchKind::Portable];
    if avx2_available() {
        v.push(DispatchKind::Avx2);
    }
    v
}

fn check_kernels<T: DispatchReal>(
    s: usize,
    c1_raw: &[f64],
    c2_raw: &[f64],
    m1_raw: &[f64],
    m2_raw: &[f64],
    s1: &[u32],
    s2: &[u32],
) {
    let sp = s.div_ceil(T::SIMD_LANES) * T::SIMD_LANES;
    let n = s1.len();
    let c1 = padded_vec::<T>(c1_raw, s, sp);
    let c2 = padded_vec::<T>(c2_raw, s, sp);
    let m1 = padded_vec::<T>(m1_raw, s, sp);
    let m2 = padded_vec::<T>(m2_raw, s, sp);
    let scalar = T::dispatch(DispatchKind::Scalar);
    for kind in paths() {
        if kind == DispatchKind::Scalar {
            continue;
        }
        let table = T::dispatch(kind);
        let mut d_ref = vec![T::ZERO; n * sp];
        let mut d_simd = vec![T::ZERO; n * sp];

        (scalar.partials_partials)(&mut d_ref, &c1, &c2, &m1, &m2, s, sp);
        (table.partials_partials)(&mut d_simd, &c1, &c2, &m1, &m2, s, sp);
        assert_close(&d_simd, &d_ref, s, &format!("pp s={s} {}", table.path));

        (scalar.states_partials)(&mut d_ref, s1, &c2, &m1, &m2, s, sp);
        (table.states_partials)(&mut d_simd, s1, &c2, &m1, &m2, s, sp);
        assert_close(&d_simd, &d_ref, s, &format!("sp s={s} {}", table.path));

        (scalar.states_states)(&mut d_ref, s1, s2, &m1, &m2, s, sp);
        (table.states_states)(&mut d_simd, s1, s2, &m1, &m2, s, sp);
        assert_close(&d_simd, &d_ref, 1, &format!("ss s={s} {}", table.path));

        // Rescaling is required to be BIT-exact on every path: the max of a
        // set and multiplication by its reciprocal are order-insensitive.
        (scalar.partials_partials)(&mut d_ref, &c1, &c2, &m1, &m2, s, sp);
        d_simd.copy_from_slice(&d_ref);
        let mut sc_ref = vec![T::ZERO; n];
        let mut sc_simd = vec![T::ZERO; n];
        (scalar.rescale_max)(&d_ref, &mut sc_ref, sp);
        (table.rescale_max)(&d_simd, &mut sc_simd, sp);
        assert_eq!(
            sc_ref
                .iter()
                .map(|x| x.to_f64().to_bits())
                .collect::<Vec<_>>(),
            sc_simd
                .iter()
                .map(|x| x.to_f64().to_bits())
                .collect::<Vec<_>>(),
            "rescale_max s={s} {} not bit-exact",
            table.path
        );
        (scalar.rescale_apply)(&mut d_ref, &sc_ref, sp);
        (table.rescale_apply)(&mut d_simd, &sc_simd, sp);
        assert_eq!(
            d_ref
                .iter()
                .map(|x| x.to_f64().to_bits())
                .collect::<Vec<_>>(),
            d_simd
                .iter()
                .map(|x| x.to_f64().to_bits())
                .collect::<Vec<_>>(),
            "rescale_apply s={s} {} not bit-exact",
            table.path
        );

        // Root integration (freqs padded with exact zeros).
        let freqs = padded_vec::<T>(&vec![1.0 / s as f64; s], s, sp);
        let catw = vec![T::ONE];
        let pw = vec![T::ONE; n];
        let mut site_ref = vec![T::ZERO; n];
        let mut site_simd = vec![T::ZERO; n];
        let t_ref =
            (scalar.integrate_root)(&mut site_ref, &c1, &freqs, &catw, &pw, None, s, sp, n, 0);
        let t_simd =
            (table.integrate_root)(&mut site_simd, &c1, &freqs, &catw, &pw, None, s, sp, n, 0);
        assert_close(
            &site_simd,
            &site_ref,
            s,
            &format!("root s={s} {}", table.path),
        );
        assert!(
            t_ref == t_simd
                || (t_ref - t_simd).abs() <= dot_tol::<T>(s * n).max(1e-9) * t_ref.abs().max(1.0),
            "root total s={s} {}: {t_ref} vs {t_simd}",
            table.path
        );

        // Edge integration with a partials child.
        let edge_ref = kernels::integrate_edge(
            &mut site_ref,
            &c1,
            kernels::EdgeChild::Partials(&c2),
            &m1,
            &freqs,
            &catw,
            &pw,
            None,
            s,
            sp,
            n,
            0,
        );
        let edge_simd = (table.integrate_edge)(
            &mut site_simd,
            &c1,
            kernels::EdgeChild::Partials(&c2),
            &m1,
            &freqs,
            &catw,
            &pw,
            None,
            s,
            sp,
            n,
            0,
        );
        assert_close(
            &site_simd,
            &site_ref,
            s,
            &format!("edge s={s} {}", table.path),
        );
        assert!(
            edge_ref == edge_simd
                || (edge_ref - edge_simd).abs()
                    <= dot_tol::<T>(s * n).max(1e-9) * edge_ref.abs().max(1.0),
            "edge total s={s} {}: {edge_ref} vs {edge_simd}",
            table.path
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All kernels on all host dispatch paths agree with the scalar oracle
    /// in double precision, for every supported state-count shape.
    #[test]
    fn kernels_agree_f64(
        sel in 0usize..4,
        n in 1usize..24,
        seed in proptest::collection::vec(value(false), 24 * 61),
        mseed in proptest::collection::vec(value(false), 61 * 61),
        gaps1 in states_strategy(61, 24),
        gaps2 in states_strategy(61, 24),
    ) {
        let s = STATE_COUNTS[sel];
        let c1: Vec<f64> = seed.iter().take(n * s).copied().collect();
        let c2: Vec<f64> = seed.iter().rev().take(n * s).copied().collect();
        let m1: Vec<f64> = mseed.iter().take(s * s).map(|v| v.max(1e-9)).collect();
        let m2: Vec<f64> = mseed.iter().rev().take(s * s).map(|v| v.max(1e-9)).collect();
        let s1: Vec<u32> = gaps1[..n].iter().map(|&x| if x == GAP_STATE { x } else { x % s as u32 }).collect();
        let s2: Vec<u32> = gaps2[..n].iter().map(|&x| if x == GAP_STATE { x } else { x % s as u32 }).collect();
        check_kernels::<f64>(s, &c1, &c2, &m1, &m2, &s1, &s2);
    }

    /// Same parity matrix in single precision.
    #[test]
    fn kernels_agree_f32(
        sel in 0usize..4,
        n in 1usize..24,
        seed in proptest::collection::vec(value(true), 24 * 61),
        mseed in proptest::collection::vec(value(true), 61 * 61),
        gaps1 in states_strategy(61, 24),
        gaps2 in states_strategy(61, 24),
    ) {
        let s = STATE_COUNTS[sel];
        let c1: Vec<f64> = seed.iter().take(n * s).copied().collect();
        let c2: Vec<f64> = seed.iter().rev().take(n * s).copied().collect();
        let m1: Vec<f64> = mseed.iter().take(s * s).map(|v| v.max(1e-9)).collect();
        let m2: Vec<f64> = mseed.iter().rev().take(s * s).map(|v| v.max(1e-9)).collect();
        let s1: Vec<u32> = gaps1[..n].iter().map(|&x| if x == GAP_STATE { x } else { x % s as u32 }).collect();
        let s2: Vec<u32> = gaps2[..n].iter().map(|&x| if x == GAP_STATE { x } else { x % s as u32 }).collect();
        check_kernels::<f32>(s, &c1, &c2, &m1, &m2, &s1, &s2);
    }

    /// The AVX2 4-state specializations replay the portable kernels' exact
    /// FMA chain, so nucleotide partials must match BIT-for-bit.
    #[test]
    fn avx2_nucleotide_bit_exact(
        n in 1usize..32,
        seed in proptest::collection::vec(value(false), 32 * 4),
        mseed in proptest::collection::vec(1e-6f64..1.0, 32),
    ) {
        if !avx2_available() {
            return;
        }
        let s = 4;
        let sp = 4; // f64 lanes
        let c1: Vec<f64> = seed.iter().take(n * s).copied().collect();
        let c2: Vec<f64> = seed.iter().rev().take(n * s).copied().collect();
        let m1: Vec<f64> = mseed.iter().take(16).copied().collect();
        let m2: Vec<f64> = mseed.iter().rev().take(16).copied().collect();
        let (c1, c2) = (padded_vec::<f64>(&c1, s, sp), padded_vec::<f64>(&c2, s, sp));
        let (m1, m2) = (padded_vec::<f64>(&m1, s, sp), padded_vec::<f64>(&m2, s, sp));
        let portable = <f64 as DispatchReal>::dispatch(DispatchKind::Portable);
        let avx2 = <f64 as DispatchReal>::dispatch(DispatchKind::Avx2);
        prop_assert_eq!(avx2.path, "avx2");
        let mut d_p = vec![0.0; n * sp];
        let mut d_v = vec![0.0; n * sp];
        (portable.partials_partials)(&mut d_p, &c1, &c2, &m1, &m2, s, sp);
        (avx2.partials_partials)(&mut d_v, &c1, &c2, &m1, &m2, s, sp);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&d_p), bits(&d_v));
    }
}

/// Drive a complete scaled likelihood computation on one dispatch path.
fn full_likelihood(kind: DispatchKind, s: usize) -> (f64, Vec<f64>) {
    let taxa = 5;
    let n_pat = 19;
    let cats = 2;
    let config = InstanceConfig::for_tree(taxa, n_pat, s, cats);
    let details = InstanceDetails {
        implementation_name: format!("test-{kind:?}"),
        resource_name: "test".into(),
        flags: Flags::NONE,
        thread_count: 1,
    };
    let mut inst =
        CpuInstance::<f64>::with_dispatch_kind(config, Threading::Serial, kind, details).unwrap();

    let freqs: Vec<f64> = (0..s).map(|i| (i + 1) as f64).collect();
    let total: f64 = freqs.iter().sum();
    let freqs: Vec<f64> = freqs.iter().map(|x| x / total).collect();
    inst.set_state_frequencies(0, &freqs).unwrap();
    inst.set_category_weights(0, &vec![1.0 / cats as f64; cats])
        .unwrap();
    inst.set_pattern_weights(&vec![1.0; n_pat]).unwrap();

    // Deterministic row-stochastic-ish matrices per category.
    let mut m = vec![0.0; cats * s * s];
    for (i, x) in m.iter_mut().enumerate() {
        *x = 0.05 + ((i * 37 + 11) % 91) as f64 / 120.0;
    }
    for mat in [0, 1, 2, 3] {
        inst.set_transition_matrix(mat, &m).unwrap();
    }
    for tip in 0..taxa {
        let states: Vec<u32> = (0..n_pat as u32)
            .map(|p| {
                if (p + tip as u32).is_multiple_of(7) {
                    GAP_STATE
                } else {
                    (p * 3 + tip as u32) % s as u32
                }
            })
            .collect();
        inst.set_tip_states(tip, &states).unwrap();
    }
    // Caterpillar topology over the 4 internal buffers.
    let ops = [
        Operation::new(5, 0, 0, 1, 1).with_scaling(5),
        Operation::new(6, 5, 2, 2, 3).with_scaling(6),
        Operation::new(7, 6, 0, 3, 1).with_scaling(7),
        Operation::new(8, 7, 2, 4, 3).with_scaling(8),
    ];
    inst.update_partials(&ops).unwrap();
    let cum = inst.config().scale_buffer_count - 1;
    inst.reset_scale_factors(cum).unwrap();
    inst.accumulate_scale_factors(&[5, 6, 7, 8], cum).unwrap();
    let lnl = inst
        .integrate_root(
            BufferId(8),
            BufferId(0),
            BufferId(0),
            ScalingMode::cumulative(cum),
        )
        .unwrap();
    (lnl, inst.get_site_log_likelihoods().unwrap())
}

/// Forced-scalar and vectorized dispatch must produce the same likelihood on
/// an end-to-end run (partials + rescaling + accumulation + integration),
/// for both a nucleotide and a codon-sized model.
#[test]
fn full_run_differential_across_paths() {
    for s in [4, 61] {
        let (lnl_scalar, site_scalar) = full_likelihood(DispatchKind::Scalar, s);
        for kind in paths() {
            let (lnl, site) = full_likelihood(kind, s);
            assert!(
                (lnl - lnl_scalar).abs() <= 1e-9 * lnl_scalar.abs().max(1.0),
                "s={s} {kind:?}: {lnl} vs scalar {lnl_scalar}"
            );
            for (a, b) in site.iter().zip(&site_scalar) {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "s={s} {kind:?} site diverged"
                );
            }
        }
    }
}

/// The portable path must be available unconditionally and the instance
/// must report which path it resolved to.
#[test]
fn instance_reports_dispatch_path() {
    let config = InstanceConfig::for_tree(3, 8, 4, 1);
    let details = InstanceDetails {
        implementation_name: "test".into(),
        resource_name: "test".into(),
        flags: Flags::NONE,
        thread_count: 1,
    };
    let inst = CpuInstance::<f64>::with_dispatch_kind(
        config,
        Threading::Serial,
        DispatchKind::Scalar,
        details,
    )
    .unwrap();
    assert_eq!(inst.dispatch_path(), "scalar");
}
