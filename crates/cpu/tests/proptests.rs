//! Property-based tests for the CPU kernels and threading machinery.

use beagle_core::{
    BeagleInstance, BufferId, Flags, ImplementationFactory, Operation, QueuedInstance, ScalingMode,
    GAP_STATE,
};
use beagle_cpu::pool::partition_range;
use beagle_cpu::{kernels, vector, CpuFactory, ThreadingModel};
use beagle_phylo::models::nucleotide;
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{SitePatterns, SiteRates, Tree};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a vector of positive likelihood-like values.
fn partials(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, len)
}

/// Strategy: a probability-ish matrix (positive entries).
fn matrix(s: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1e-6f64..1.0, s * s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vectorized 4-state kernels equal the scalar kernels on random input.
    #[test]
    fn vector4_equals_scalar(
        patterns in 1usize..64,
        c1 in partials(64 * 4),
        c2 in partials(64 * 4),
        m1 in matrix(4),
        m2 in matrix(4),
    ) {
        let n = patterns * 4;
        let mut dv = vec![0.0; n];
        let mut ds = vec![0.0; n];
        vector::partials_partials_4(&mut dv, &c1[..n], &c2[..n], &m1, &m2, 4);
        kernels::partials_partials(&mut ds, &c1[..n], &c2[..n], &m1, &m2, 4, 4);
        for (a, b) in dv.iter().zip(&ds) {
            prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
        }
    }

    /// states_partials equals partials_partials with one-hot children.
    #[test]
    fn states_equals_onehot(
        states_vals in proptest::collection::vec(0u32..4, 1..40),
        c2_seed in partials(40 * 4),
        m1 in matrix(4),
        m2 in matrix(4),
    ) {
        let patterns = states_vals.len();
        let n = patterns * 4;
        let c2 = &c2_seed[..n];
        let mut onehot = vec![0.0; n];
        for (p, &st) in states_vals.iter().enumerate() {
            onehot[p * 4 + st as usize] = 1.0;
        }
        let mut d_states = vec![0.0; n];
        let mut d_onehot = vec![0.0; n];
        kernels::states_partials(&mut d_states, &states_vals, c2, &m1, &m2, 4, 4);
        kernels::partials_partials(&mut d_onehot, &onehot, c2, &m1, &m2, 4, 4);
        for (a, b) in d_states.iter().zip(&d_onehot) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Rescaling preserves the product `partials × exp(scale)` per entry.
    #[test]
    fn rescale_preserves_values(
        patterns in 1usize..32,
        cats in 1usize..4,
        data in partials(32 * 4 * 4),
    ) {
        let s = 4;
        let mut buf: Vec<f64> = data[..cats * patterns * s].to_vec();
        let original = buf.clone();
        let mut scale = vec![0.0; patterns];
        {
            let mut blocks: Vec<&mut [f64]> = buf.chunks_exact_mut(patterns * s).collect();
            kernels::rescale_patterns(&mut blocks, &mut scale, s);
        }
        for c in 0..cats {
            for (p, &log_scale) in scale.iter().enumerate() {
                for k in 0..s {
                    let idx = (c * patterns + p) * s + k;
                    let reconstructed = buf[idx] * log_scale.exp();
                    prop_assert!((reconstructed - original[idx]).abs() < 1e-12);
                }
            }
        }
        // And the per-pattern maximum is exactly 1 after rescaling.
        for p in 0..patterns {
            let mut max: f64 = 0.0;
            for c in 0..cats {
                for k in 0..s {
                    max = max.max(buf[(c * patterns + p) * s + k]);
                }
            }
            prop_assert!((max - 1.0).abs() < 1e-12);
        }
    }

    /// Gap states act as all-ones partials in every kernel.
    #[test]
    fn gap_is_identity_operand(
        patterns in 1usize..20,
        c2_seed in partials(20 * 4),
        m2 in matrix(4),
    ) {
        let n = patterns * 4;
        // Row-stochastic m1 so the gap shortcut matches a one-vector child.
        let m1 = vec![0.25; 16];
        let gaps = vec![GAP_STATE; patterns];
        let ones = vec![1.0; n];
        let mut d_gap = vec![0.0; n];
        let mut d_ones = vec![0.0; n];
        kernels::states_partials(&mut d_gap, &gaps, &c2_seed[..n], &m1, &m2, 4, 4);
        kernels::partials_partials(&mut d_ones, &ones, &c2_seed[..n], &m1, &m2, 4, 4);
        for (a, b) in d_gap.iter().zip(&d_ones) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// partition_range always tiles [0, n) exactly with balanced chunks.
    #[test]
    fn partition_tiles_exactly(n in 0usize..100_000, chunks in 1usize..128) {
        let parts = partition_range(n, chunks);
        let total: usize = parts.iter().map(|(a, b)| b - a).sum();
        prop_assert_eq!(total, n);
        let mut prev = 0;
        for &(a, b) in &parts {
            prop_assert_eq!(a, prev);
            prop_assert!(b > a);
            prev = b;
        }
        if !parts.is_empty() {
            let lens: Vec<usize> = parts.iter().map(|(a, b)| b - a).collect();
            prop_assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
        }
    }

    /// Root integration is linear in pattern weights.
    #[test]
    fn integration_weight_linearity(
        patterns in 1usize..30,
        root in partials(30 * 4),
        w in proptest::collection::vec(0.5f64..4.0, 30),
        alpha in 0.1f64..5.0,
    ) {
        let s = 4;
        let n = patterns * s;
        let freqs = vec![0.25; 4];
        let catw = vec![1.0];
        let w1: Vec<f64> = w[..patterns].to_vec();
        let w2: Vec<f64> = w1.iter().map(|x| alpha * x).collect();
        let mut site = vec![0.0; patterns];
        let t1 = kernels::integrate_root(&mut site, &root[..n], &freqs, &catw, &w1, None, s, s, patterns, 0);
        let t2 = kernels::integrate_root(&mut site, &root[..n], &freqs, &catw, &w2, None, s, s, patterns, 0);
        prop_assert!((t2 - alpha * t1).abs() < 1e-9 * t1.abs().max(1.0));
    }

    /// Deferred execution through the operation queue (with the eigen/matrix
    /// cache) is bit-for-bit identical to eager execution on random trees —
    /// root log-likelihood, site log-likelihoods, and every internal
    /// partials buffer — scaled and unscaled, and stays identical when the
    /// same model is re-proposed (the cache-hit path).
    #[test]
    fn queued_cpu_equals_eager_bit_for_bit(
        taxa in 3usize..8,
        sites in 4usize..40,
        seed in 0u64..1_000_000,
        kappa in 1.0f64..8.0,
        scaled_sel in 0u32..2,
    ) {
        let scaled = scaled_sel == 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = Tree::random(taxa, 0.12, &mut rng);
        let model = nucleotide::hky85(kappa, &[0.1, 0.2, 0.3, 0.4]);
        let rates = SiteRates::discrete_gamma(0.5, 2);
        let alignment = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
        let patterns = SitePatterns::compress(&alignment);
        let config = beagle_core::InstanceConfig::for_tree(
            taxa,
            patterns.pattern_count(),
            4,
            rates.category_count(),
        );

        let drive = |inst: &mut dyn BeagleInstance| -> (f64, Vec<f64>) {
            let eig = model.eigen();
            inst.set_eigen_decomposition(
                0,
                eig.vectors.as_slice(),
                eig.inverse_vectors.as_slice(),
                &eig.values,
            )
            .unwrap();
            inst.set_state_frequencies(0, model.frequencies()).unwrap();
            inst.set_category_rates(&rates.rates).unwrap();
            inst.set_category_weights(0, &rates.weights).unwrap();
            inst.set_pattern_weights(patterns.weights()).unwrap();
            for tip in 0..taxa {
                inst.set_tip_states(tip, &patterns.tip_states(tip)).unwrap();
            }
            let (idx, len): (Vec<usize>, Vec<f64>) =
                tree.branch_assignments().iter().copied().unzip();
            inst.update_transition_matrices(0, &idx, &len).unwrap();
            let ops: Vec<Operation> = tree
                .operation_schedule()
                .iter()
                .map(|e| {
                    let op =
                        Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2);
                    if scaled { op.with_scaling(e.destination) } else { op }
                })
                .collect();
            inst.update_partials(&ops).unwrap();
            let cum = if scaled {
                let c = inst.config().scale_buffer_count - 1;
                inst.reset_scale_factors(c).unwrap();
                let bufs: Vec<usize> = ops.iter().map(|o| o.destination).collect();
                inst.accumulate_scale_factors(&bufs, c).unwrap();
                ScalingMode::cumulative(c)
            } else {
                ScalingMode::None
            };
            let lnl = inst
                .integrate_root(BufferId(tree.root()), BufferId(0), BufferId(0), cum)
                .unwrap();
            (lnl, inst.get_site_log_likelihoods().unwrap())
        };

        let factory = CpuFactory::with_threads(ThreadingModel::Serial, false, 1);
        let mut eager = factory.create(&config, Flags::PRECISION_DOUBLE, Flags::NONE).unwrap();
        let mut queued = QueuedInstance::new(
            factory.create(&config, Flags::PRECISION_DOUBLE, Flags::NONE).unwrap(),
        );

        let (lnl_e, sites_e) = drive(eager.as_mut());
        let (lnl_q, sites_q) = drive(&mut queued);
        prop_assert_eq!(lnl_e.to_bits(), lnl_q.to_bits());
        let se: Vec<u64> = sites_e.iter().map(|v| v.to_bits()).collect();
        let sq: Vec<u64> = sites_q.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(se, sq);
        for node in taxa..(2 * taxa - 1) {
            let pe: Vec<u64> =
                eager.get_partials(node).unwrap().iter().map(|v| v.to_bits()).collect();
            let pq: Vec<u64> =
                queued.get_partials(node).unwrap().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(pe, pq, "partials buffer {} diverged", node);
        }

        // Re-propose the identical model: the second pass is served from the
        // eigen/matrix cache and must not perturb a single bit.
        let misses = queued.stats().eigen_cache_misses;
        prop_assert!(misses > 0);
        let (lnl_e2, _) = drive(eager.as_mut());
        let (lnl_q2, _) = drive(&mut queued);
        prop_assert_eq!(lnl_e2.to_bits(), lnl_q2.to_bits());
        let stats = queued.stats();
        prop_assert!(stats.eigen_cache_hits > 0);
        prop_assert_eq!(stats.eigen_cache_misses, misses);
    }
}
