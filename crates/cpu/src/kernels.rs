//! Scalar likelihood kernels for the CPU back-ends.
//!
//! Every kernel operates on one *block*: a contiguous `[pattern][state]`
//! slice belonging to a single rate category, together with that category's
//! transition matrices. Blocks are exactly the unit the threading models
//! distribute — a (category, pattern-range) chunk — so the same kernels
//! serve the serial, thread-create, and thread-pool paths.
//!
//! All kernels take both the true state count `s` and the padded per-pattern
//! stride `sp >= s` (see `beagle_core::buffers`): pattern `p`'s state vector
//! occupies `[p*sp, p*sp+s)`, matrix row `i` occupies `[i*sp, i*sp+s)`, and
//! padding lanes are exact zeros. Passing `sp == s` recovers the dense
//! layout. The scalar kernels only ever touch the first `s` lanes, so their
//! results are bit-identical for any stride.
//!
//! Kernel variants follow BEAGLE: the operands of a partials operation can
//! each be full partials or compact tip states, giving three kernels
//! (partials×partials, states×partials, states×states).

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

/// `dest[p][i] = (Σ_j m1[i][j]·c1[p][j]) · (Σ_j m2[i][j]·c2[p][j])`
/// over all patterns of the block.
pub fn partials_partials<T: Real>(
    dest: &mut [T],
    c1: &[T],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    debug_assert!(sp >= s);
    debug_assert_eq!(dest.len() % sp, 0);
    debug_assert_eq!(dest.len(), c1.len());
    debug_assert_eq!(dest.len(), c2.len());
    debug_assert_eq!(m1.len(), s * sp);
    debug_assert_eq!(m2.len(), s * sp);
    for ((d, a), b) in dest
        .chunks_exact_mut(sp)
        .zip(c1.chunks_exact(sp))
        .zip(c2.chunks_exact(sp))
    {
        for i in 0..s {
            let row1 = &m1[i * sp..i * sp + s];
            let row2 = &m2[i * sp..i * sp + s];
            let mut sum1 = T::ZERO;
            let mut sum2 = T::ZERO;
            for j in 0..s {
                sum1 = row1[j].mul_add(a[j], sum1);
                sum2 = row2[j].mul_add(b[j], sum2);
            }
            d[i] = sum1 * sum2;
        }
    }
}

/// `c1` is compact tip states (one per pattern in the block's range):
/// `dest[p][i] = m1[i][s1_p] · (Σ_j m2[i][j]·c2[p][j])`, with gaps reading 1.
pub fn states_partials<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    debug_assert_eq!(dest.len(), c2.len());
    debug_assert_eq!(dest.len(), s1.len() * sp);
    for ((d, &st), b) in dest
        .chunks_exact_mut(sp)
        .zip(s1.iter())
        .zip(c2.chunks_exact(sp))
    {
        for i in 0..s {
            let row2 = &m2[i * sp..i * sp + s];
            let mut sum2 = T::ZERO;
            for j in 0..s {
                sum2 = row2[j].mul_add(b[j], sum2);
            }
            let p1 = if st == GAP_STATE {
                T::ONE
            } else {
                m1[i * sp + st as usize]
            };
            d[i] = p1 * sum2;
        }
    }
}

/// Both children compact: `dest[p][i] = m1[i][s1_p] · m2[i][s2_p]`.
pub fn states_states<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    s2: &[u32],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    debug_assert_eq!(dest.len(), s1.len() * sp);
    debug_assert_eq!(s1.len(), s2.len());
    for ((d, &st1), &st2) in dest.chunks_exact_mut(sp).zip(s1.iter()).zip(s2.iter()) {
        for i in 0..s {
            let p1 = if st1 == GAP_STATE {
                T::ONE
            } else {
                m1[i * sp + st1 as usize]
            };
            let p2 = if st2 == GAP_STATE {
                T::ONE
            } else {
                m2[i * sp + st2 as usize]
            };
            d[i] = p1 * p2;
        }
    }
}

/// Per-block max pass of rescaling: `maxes[p] = max(maxes[p], max_k
/// block[p][k])` over the whole block in one streaming sweep. Padding lanes
/// are zeros, so scanning the full stride cannot change the maximum.
pub fn rescale_block_max<T: Real>(block: &[T], maxes: &mut [T], sp: usize) {
    if sp == 4 {
        // Nucleotide specialization: fully unrolled per-pattern max.
        for (mx, q) in maxes.iter_mut().zip(block.chunks_exact(4)) {
            let m = q[0].max(q[1]).max(q[2].max(q[3]));
            *mx = (*mx).max(m);
        }
    } else {
        for (mx, q) in maxes.iter_mut().zip(block.chunks_exact(sp)) {
            let mut m = T::ZERO;
            for &x in q {
                m = m.max(x);
            }
            *mx = (*mx).max(m);
        }
    }
}

/// Per-block scale pass of rescaling: multiplies pattern `p`'s entries by
/// `1/maxes[p]` (skipping all-zero patterns), one streaming sweep per block.
pub fn rescale_block_apply<T: Real>(block: &mut [T], maxes: &[T], sp: usize) {
    for (&mx, q) in maxes.iter().zip(block.chunks_exact_mut(sp)) {
        if mx > T::ZERO {
            let inv = T::ONE / mx;
            for x in q {
                *x *= inv;
            }
        }
    }
}

/// Final pass of rescaling: turn the per-pattern maxima into log scale
/// factors in place (`ln(max)`, or 0 for all-zero patterns).
pub fn rescale_finish<T: Real>(maxes: &mut [T]) {
    for mx in maxes {
        *mx = if *mx > T::ZERO { (*mx).ln() } else { T::ZERO };
    }
}

/// Rescale one pattern's partials across **all categories** to a maximum of
/// 1, accumulating `ln(max)` into `scale_out[p]`. `blocks` are per-category
/// mutable block slices covering the same pattern range; patterns are local.
///
/// BEAGLE scales per pattern over the joint (category × state) entries so a
/// single factor per pattern suffices at root integration. Structured as
/// per-block streaming passes (max, then scale, then log) so each block is
/// walked contiguously; the result is bit-identical to the per-pattern
/// strided walk it replaces (max is exact under reordering and the scale
/// factor `1/max` is the same value either way).
pub fn rescale_patterns<T: Real>(blocks: &mut [&mut [T]], scale_out: &mut [T], sp: usize) {
    scale_out.iter_mut().for_each(|x| *x = T::ZERO);
    for block in blocks.iter() {
        rescale_block_max(block, scale_out, sp);
    }
    for block in blocks.iter_mut() {
        rescale_block_apply(block, scale_out, sp);
    }
    rescale_finish(scale_out);
}

/// Root integration for a pattern range: writes per-pattern site
/// log-likelihoods (`+ cumulative scale factor` when provided) and returns
/// the weighted sum `Σ_p w_p · lnL_p` of the range.
#[allow(clippy::too_many_arguments)]
pub fn integrate_root<T: Real>(
    site_lnl: &mut [T],
    root: &[T],
    freqs: &[T],
    cat_weights: &[T],
    pattern_weights: &[T],
    cumulative_scale: Option<&[T]>,
    s: usize,
    sp: usize,
    n_pat_total: usize,
    p0: usize,
) -> f64 {
    let n_range = site_lnl.len();
    let mut total = 0.0;
    for lp in 0..n_range {
        let p = p0 + lp;
        let mut site = T::ZERO;
        for (c, &w) in cat_weights.iter().enumerate() {
            let base = (c * n_pat_total + p) * sp;
            let mut state_sum = T::ZERO;
            for k in 0..s {
                state_sum = freqs[k].mul_add(root[base + k], state_sum);
            }
            site = w.mul_add(state_sum, site);
        }
        let mut lnl = site.ln();
        if let Some(cs) = cumulative_scale {
            lnl += cs[p];
        }
        site_lnl[lp] = lnl;
        total += pattern_weights[p].to_f64() * lnl.to_f64();
    }
    total
}

/// Edge integration for a pattern range: combines parent partials with child
/// partials propagated through one transition matrix. Returns the weighted
/// range sum and fills site log-likelihoods.
#[allow(clippy::too_many_arguments)]
pub fn integrate_edge<T: Real>(
    site_lnl: &mut [T],
    parent: &[T],
    child: EdgeChild<'_, T>,
    matrix: &[T],
    freqs: &[T],
    cat_weights: &[T],
    pattern_weights: &[T],
    cumulative_scale: Option<&[T]>,
    s: usize,
    sp: usize,
    n_pat_total: usize,
    p0: usize,
) -> f64 {
    let n_range = site_lnl.len();
    let mut total = 0.0;
    for lp in 0..n_range {
        let p = p0 + lp;
        let mut site = T::ZERO;
        for (c, &w) in cat_weights.iter().enumerate() {
            let base = (c * n_pat_total + p) * sp;
            let m = &matrix[c * s * sp..(c + 1) * s * sp];
            let mut state_sum = T::ZERO;
            for i in 0..s {
                let prop = match child {
                    EdgeChild::Partials(cp) => {
                        let row = &m[i * sp..i * sp + s];
                        let mut acc = T::ZERO;
                        for j in 0..s {
                            acc = row[j].mul_add(cp[base + j], acc);
                        }
                        acc
                    }
                    EdgeChild::States(st) => {
                        let stp = st[p];
                        if stp == GAP_STATE {
                            T::ONE
                        } else {
                            m[i * sp + stp as usize]
                        }
                    }
                };
                state_sum += freqs[i] * parent[base + i] * prop;
            }
            site = w.mul_add(state_sum, site);
        }
        let mut lnl = site.ln();
        if let Some(cs) = cumulative_scale {
            lnl += cs[p];
        }
        site_lnl[lp] = lnl;
        total += pattern_weights[p].to_f64() * lnl.to_f64();
    }
    total
}

/// Edge integration with branch-length derivatives: returns
/// `(Σ w_p lnL_p, dlnL/dt, d²lnL/dt²)` over the pattern range, where
/// `d1_matrix`/`d2_matrix` hold `dP/dt` and `d²P/dt²`. Because the
/// derivative site sums share the parent/child scale factors with the
/// likelihood site sums, the per-pattern ratios `D1_p/L_p` and `D2_p/L_p`
/// are scale-free and only the log term needs the cumulative factors.
#[allow(clippy::too_many_arguments)]
pub fn integrate_edge_derivatives<T: Real>(
    parent: &[T],
    child: EdgeChild<'_, T>,
    matrix: &[T],
    d1_matrix: &[T],
    d2_matrix: &[T],
    freqs: &[T],
    cat_weights: &[T],
    pattern_weights: &[T],
    cumulative_scale: Option<&[T]>,
    s: usize,
    sp: usize,
    n_pat_total: usize,
) -> (f64, f64, f64) {
    let mut lnl = 0.0;
    let mut d1_total = 0.0;
    let mut d2_total = 0.0;
    for p in 0..n_pat_total {
        let mut site_l = T::ZERO;
        let mut site_d1 = T::ZERO;
        let mut site_d2 = T::ZERO;
        for (c, &w) in cat_weights.iter().enumerate() {
            let base = (c * n_pat_total + p) * sp;
            let m = &matrix[c * s * sp..(c + 1) * s * sp];
            let m1 = &d1_matrix[c * s * sp..(c + 1) * s * sp];
            let m2 = &d2_matrix[c * s * sp..(c + 1) * s * sp];
            for i in 0..s {
                let (prop, prop1, prop2) = match child {
                    EdgeChild::Partials(cp) => {
                        let mut a = T::ZERO;
                        let mut b = T::ZERO;
                        let mut d = T::ZERO;
                        for j in 0..s {
                            let x = cp[base + j];
                            a = m[i * sp + j].mul_add(x, a);
                            b = m1[i * sp + j].mul_add(x, b);
                            d = m2[i * sp + j].mul_add(x, d);
                        }
                        (a, b, d)
                    }
                    EdgeChild::States(st) => {
                        let stp = st[p];
                        if stp == GAP_STATE {
                            // A gap contributes the constant 1: no gradient.
                            (T::ONE, T::ZERO, T::ZERO)
                        } else {
                            let j = stp as usize;
                            (m[i * sp + j], m1[i * sp + j], m2[i * sp + j])
                        }
                    }
                };
                let fp = freqs[i] * parent[base + i];
                site_l += w * fp * prop;
                site_d1 += w * fp * prop1;
                site_d2 += w * fp * prop2;
            }
        }
        let weight = pattern_weights[p].to_f64();
        let mut site_lnl = site_l.ln().to_f64();
        if let Some(cs) = cumulative_scale {
            site_lnl += cs[p].to_f64();
        }
        lnl += weight * site_lnl;
        let r1 = site_d1.to_f64() / site_l.to_f64();
        let r2 = site_d2.to_f64() / site_l.to_f64();
        d1_total += weight * r1;
        d2_total += weight * (r2 - r1 * r1);
    }
    (lnl, d1_total, d2_total)
}

/// Child operand of an edge integration.
#[derive(Clone, Copy)]
pub enum EdgeChild<'a, T: Real> {
    /// Full partials buffer (`[category][pattern][stride]`, full length).
    Partials(&'a [T]),
    /// Compact states per pattern (full pattern range).
    States(&'a [u32]),
}

#[cfg(test)]
mod tests {
    use super::*;

    /// partials_partials with identity matrices multiplies the children.
    #[test]
    fn pp_identity_multiplies() {
        let s = 4;
        let id: Vec<f64> = (0..16)
            .map(|i| if i % 5 == 0 { 1.0 } else { 0.0 })
            .collect();
        let c1 = vec![1.0, 2.0, 3.0, 4.0, 0.5, 0.5, 0.5, 0.5];
        let c2 = vec![2.0, 2.0, 2.0, 2.0, 1.0, 2.0, 3.0, 4.0];
        let mut dest = vec![0.0; 8];
        partials_partials(&mut dest, &c1, &c2, &id, &id, s, s);
        assert_eq!(dest, vec![2.0, 4.0, 6.0, 8.0, 0.5, 1.0, 1.5, 2.0]);
    }

    /// A padded stride with zeroed pad lanes reproduces the dense result.
    #[test]
    fn pp_padded_stride_matches_dense() {
        let (s, sp) = (3, 4);
        let m_dense: Vec<f64> = (0..9).map(|i| 0.1 + i as f64 * 0.05).collect();
        let mut m_pad = vec![0.0; s * sp];
        for i in 0..s {
            m_pad[i * sp..i * sp + s].copy_from_slice(&m_dense[i * s..(i + 1) * s]);
        }
        let c_dense: Vec<f64> = (0..2 * s).map(|i| 0.2 + i as f64 * 0.07).collect();
        let mut c_pad = vec![0.0; 2 * sp];
        for p in 0..2 {
            c_pad[p * sp..p * sp + s].copy_from_slice(&c_dense[p * s..(p + 1) * s]);
        }
        let mut d_dense = vec![0.0; 2 * s];
        let mut d_pad = vec![0.0; 2 * sp];
        partials_partials(&mut d_dense, &c_dense, &c_dense, &m_dense, &m_dense, s, s);
        partials_partials(&mut d_pad, &c_pad, &c_pad, &m_pad, &m_pad, s, sp);
        for p in 0..2 {
            for k in 0..s {
                assert_eq!(d_dense[p * s + k], d_pad[p * sp + k]);
            }
            assert_eq!(d_pad[p * sp + s], 0.0, "pad lane untouched");
        }
    }

    #[test]
    fn sp_matches_pp_with_onehot() {
        // states_partials must equal partials_partials with one-hot partials.
        let s = 4;
        let m1: Vec<f64> = (0..16).map(|i| 0.1 + i as f64 * 0.01).collect();
        let m2: Vec<f64> = (0..16).map(|i| 0.2 + i as f64 * 0.02).collect();
        let states = vec![2u32, 0u32];
        let mut onehot = vec![0.0; 8];
        onehot[2] = 1.0;
        onehot[4] = 1.0;
        let c2 = vec![0.3, 0.1, 0.4, 0.2, 0.25, 0.25, 0.25, 0.25];

        let mut d1 = vec![0.0; 8];
        states_partials(&mut d1, &states, &c2, &m1, &m2, s, s);
        let mut d2 = vec![0.0; 8];
        partials_partials(&mut d2, &onehot, &c2, &m1, &m2, s, s);
        for (a, b) in d1.iter().zip(&d2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn ss_matches_pp_with_onehot() {
        let s = 4;
        let m1: Vec<f64> = (0..16).map(|i| 0.1 + i as f64 * 0.01).collect();
        let m2: Vec<f64> = (0..16).map(|i| 0.2 + i as f64 * 0.02).collect();
        let s1 = vec![3u32];
        let s2 = vec![1u32];
        let mut oh1 = vec![0.0; 4];
        oh1[3] = 1.0;
        let mut oh2 = vec![0.0; 4];
        oh2[1] = 1.0;
        let mut d1 = vec![0.0; 4];
        states_states(&mut d1, &s1, &s2, &m1, &m2, s, s);
        let mut d2 = vec![0.0; 4];
        partials_partials(&mut d2, &oh1, &oh2, &m1, &m2, s, s);
        for (a, b) in d1.iter().zip(&d2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn gaps_read_as_one() {
        let s = 4;
        let m: Vec<f64> = vec![0.5; 16];
        let states = vec![GAP_STATE];
        let c2 = vec![1.0, 1.0, 1.0, 1.0];
        let mut d = vec![0.0; 4];
        states_partials(&mut d, &states, &c2, &m, &m, s, s);
        // p1 = 1, sum2 = 2.0 → all entries 2.0
        assert_eq!(d, vec![2.0; 4]);
    }

    #[test]
    fn rescale_normalizes_max_to_one() {
        let s = 2;
        let mut b0 = vec![0.5, 0.25, 1e-8, 2e-8];
        let mut b1 = vec![0.1, 0.05, 4e-8, 1e-8];
        let mut scale = vec![0.0; 2];
        {
            let mut blocks: Vec<&mut [f64]> = vec![&mut b0, &mut b1];
            rescale_patterns(&mut blocks, &mut scale, s);
        }
        assert!((b0[0] - 1.0).abs() < 1e-15, "pattern 0 max becomes 1");
        assert!((scale[0] - 0.5_f64.ln()).abs() < 1e-15);
        assert!((b1[2] - 1.0).abs() < 1e-12, "pattern 1 max is in block 1");
        assert!((scale[1] - 4e-8_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn rescale_zero_pattern_is_noop() {
        let mut b0 = vec![0.0, 0.0];
        let mut scale = vec![7.0];
        {
            let mut blocks: Vec<&mut [f64]> = vec![&mut b0];
            rescale_patterns(&mut blocks, &mut scale, 2);
        }
        assert_eq!(scale[0], 0.0);
        assert_eq!(b0, vec![0.0, 0.0]);
    }

    /// The per-block restructure must match a straightforward per-pattern
    /// reference implementation bit for bit.
    #[test]
    fn rescale_matches_per_pattern_reference() {
        let sp = 4;
        let n_pat = 7;
        let mk = |seed: u64| -> Vec<f64> {
            (0..n_pat * sp)
                .map(|i| ((seed + i as u64 * 2654435761) % 1000) as f64 * 1e-5 + 1e-9)
                .collect()
        };
        let mut b0 = mk(3);
        let mut b1 = mk(11);
        let mut r0 = b0.clone();
        let mut r1 = b1.clone();
        // Reference: per-pattern strided walk (the old implementation).
        let mut ref_scale = vec![0.0f64; n_pat];
        for p in 0..n_pat {
            let mut max = 0.0f64;
            for block in [&r0, &r1] {
                for &x in &block[p * sp..(p + 1) * sp] {
                    max = max.max(x);
                }
            }
            if max > 0.0 {
                let inv = 1.0 / max;
                for block in [&mut r0, &mut r1] {
                    for x in &mut block[p * sp..(p + 1) * sp] {
                        *x *= inv;
                    }
                }
                ref_scale[p] = max.ln();
            }
        }
        let mut scale = vec![0.0f64; n_pat];
        {
            let mut blocks: Vec<&mut [f64]> = vec![&mut b0, &mut b1];
            rescale_patterns(&mut blocks, &mut scale, sp);
        }
        assert_eq!(scale, ref_scale);
        assert_eq!(b0, r0);
        assert_eq!(b1, r1);
    }

    #[test]
    fn root_integration_uniform() {
        // One category, 2 states, uniform freqs: site L = 0.5*(a+b).
        let root = vec![0.2, 0.6, 0.4, 0.4];
        let freqs = vec![0.5, 0.5];
        let catw = vec![1.0];
        let pw = vec![2.0, 1.0];
        let mut site = vec![0.0; 2];
        let total = integrate_root(&mut site, &root, &freqs, &catw, &pw, None, 2, 2, 2, 0);
        let l0 = (0.5 * 0.8_f64).ln();
        let l1 = (0.5 * 0.8_f64).ln();
        assert!((site[0] - l0).abs() < 1e-12);
        assert!((total - (2.0 * l0 + l1)).abs() < 1e-12);
    }

    #[test]
    fn root_integration_applies_scale() {
        let root = vec![1.0, 1.0];
        let freqs = vec![0.5, 0.5];
        let catw = vec![1.0];
        let pw = vec![1.0];
        let cs = vec![-3.5];
        let mut site = vec![0.0; 1];
        let total = integrate_root(&mut site, &root, &freqs, &catw, &pw, Some(&cs), 2, 2, 1, 0);
        assert!((site[0] - (1.0_f64.ln() - 3.5)).abs() < 1e-12);
        assert!((total + 3.5).abs() < 1e-12);
    }

    #[test]
    fn edge_integration_equals_root_at_zero_matrix_identity() {
        // With an identity matrix and child = all-ones partials, the edge
        // likelihood equals Σ_i f_i · parent_i — i.e. root integration of
        // the parent.
        let s = 2;
        let parent = vec![0.3, 0.7];
        let child = vec![1.0, 1.0];
        let id = vec![1.0, 0.0, 0.0, 1.0];
        let freqs = vec![0.4, 0.6];
        let catw = vec![1.0];
        let pw = vec![1.0];
        let mut site_e = vec![0.0];
        let te = integrate_edge(
            &mut site_e,
            &parent,
            EdgeChild::Partials(&child),
            &id,
            &freqs,
            &catw,
            &pw,
            None,
            s,
            s,
            1,
            0,
        );
        let mut site_r = vec![0.0];
        let tr = integrate_root(&mut site_r, &parent, &freqs, &catw, &pw, None, s, s, 1, 0);
        assert!((te - tr).abs() < 1e-12);
    }
}
