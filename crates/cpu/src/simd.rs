//! Runtime-dispatched SIMD kernel layer.
//!
//! The CPU instance picks one [`KernelDispatch`] table at creation time and
//! calls every hot kernel through it. Three tables exist per precision:
//!
//! * **scalar** — the generic kernels in [`crate::kernels`], used for
//!   non-vectorized instances and under `BEAGLE_FORCE_SCALAR`;
//! * **portable** — the unrolled 4-state kernels in [`crate::vector`] where
//!   applicable (generic kernels otherwise), used when the instance asked
//!   for vectorization but the host lacks AVX2+FMA (or isn't x86-64);
//! * **avx2** — explicit `std::arch` AVX2+FMA intrinsics (`f64`×4 /
//!   `f32`×8), selected when `is_x86_feature_detected!` confirms support.
//!
//! The AVX2 kernels rely on the padded buffer layout (see
//! `beagle_core::buffers`): each pattern's state vector and each matrix row
//! occupy `sp` lanes where `sp` is the state count rounded up to
//! [`Real::SIMD_LANES`], with pad lanes holding exact zeros. Inner dot
//! products therefore run remainder-free over the full stride — the zero
//! pads contribute nothing — and wide state counts (s=20 amino acid, s=61
//! codon) are tiled over destination rows so the matrix tile stays in L1
//! while patterns stream.
//!
//! Setting the environment variable `BEAGLE_FORCE_SCALAR` (to anything but
//! `"0"`) at instance creation forces the scalar table regardless of host
//! capability — the testing/benchmark override named in the details string.

use beagle_core::real::Real;

use crate::kernels::{self, EdgeChild};
use crate::vector;

/// Which kernel table an instance resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchKind {
    /// Generic scalar kernels only.
    Scalar,
    /// Portable unrolled kernels (compiler-vectorized), no intrinsics.
    Portable,
    /// Explicit AVX2+FMA intrinsic kernels.
    Avx2,
}

type PpFn<T> = fn(&mut [T], &[T], &[T], &[T], &[T], usize, usize);
type SpFn<T> = fn(&mut [T], &[u32], &[T], &[T], &[T], usize, usize);
type SsFn<T> = fn(&mut [T], &[u32], &[u32], &[T], &[T], usize, usize);
type RescaleMaxFn<T> = fn(&[T], &mut [T], usize);
type RescaleApplyFn<T> = fn(&mut [T], &[T], usize);
#[allow(clippy::type_complexity)]
type RootFn<T> =
    fn(&mut [T], &[T], &[T], &[T], &[T], Option<&[T]>, usize, usize, usize, usize) -> f64;
#[allow(clippy::type_complexity)]
type EdgeFn<T> = fn(
    &mut [T],
    &[T],
    EdgeChild<'_, T>,
    &[T],
    &[T],
    &[T],
    &[T],
    Option<&[T]>,
    usize,
    usize,
    usize,
    usize,
) -> f64;

/// One resolved kernel table: every hot-path kernel as a plain fn pointer,
/// chosen once at instance creation so the per-operation dispatch cost is a
/// single indirect call.
pub struct KernelDispatch<T: Real> {
    /// Human-readable path name ("scalar" / "portable" / "avx2").
    pub path: &'static str,
    /// partials × partials kernel.
    pub partials_partials: PpFn<T>,
    /// states × partials kernel.
    pub states_partials: SpFn<T>,
    /// states × states kernel.
    pub states_states: SsFn<T>,
    /// Per-block max pass of rescaling.
    pub rescale_max: RescaleMaxFn<T>,
    /// Per-block scale pass of rescaling.
    pub rescale_apply: RescaleApplyFn<T>,
    /// Root integration over a pattern range.
    pub integrate_root: RootFn<T>,
    /// Edge integration over a pattern range.
    pub integrate_edge: EdgeFn<T>,
}

/// A [`Real`] that can resolve a kernel table — implemented for `f32`/`f64`.
pub trait DispatchReal: Real {
    /// The kernel table for `kind`. On hosts where AVX2+FMA is unavailable
    /// the `Avx2` request degrades to the portable table, so the returned
    /// table is always safe to call.
    fn dispatch(kind: DispatchKind) -> &'static KernelDispatch<Self>;
}

/// The `BEAGLE_FORCE_SCALAR` environment override: `Some(true)` forces the
/// scalar path, `Some(false)` (the literal value `"0"`) explicitly releases
/// a typed scalar pin, `None` means the variable is unset and the typed
/// request (`Flags::KERNEL_SCALAR`) decides. Read at instance creation, not
/// per call.
pub fn force_scalar_env() -> Option<bool> {
    std::env::var("BEAGLE_FORCE_SCALAR").ok().map(|v| v != "0")
}

/// True when `BEAGLE_FORCE_SCALAR` is set (to anything but `"0"`). Read at
/// instance creation, not per call.
pub fn force_scalar() -> bool {
    force_scalar_env().unwrap_or(false)
}

/// True when the host supports the AVX2+FMA kernel set.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when hardware FMA may actually be used: the host has it and the
/// scalar override is not in force. The accelerator back-end consults this
/// so its simulated-device FMA fast path never claims units the host build
/// would not exercise.
pub fn host_fma_available() -> bool {
    avx2_available() && !force_scalar()
}

/// Resolve the dispatch kind for an instance, honouring the
/// `BEAGLE_FORCE_SCALAR` override. Called once at instance creation.
pub fn select_kind(vectorized: bool) -> DispatchKind {
    select_kind_with(vectorized, false)
}

/// Like [`select_kind`], but with a typed scalar request from the client
/// (`Flags::KERNEL_SCALAR` via `InstanceSpec::force_scalar`). Precedence:
/// the environment variable, when set, wins over the typed request; the
/// typed request wins over the hardware-detected default.
pub fn select_kind_with(vectorized: bool, typed_scalar: bool) -> DispatchKind {
    if !vectorized || force_scalar_env().unwrap_or(typed_scalar) {
        DispatchKind::Scalar
    } else if avx2_available() {
        DispatchKind::Avx2
    } else {
        DispatchKind::Portable
    }
}

// ---------------------------------------------------------------------------
// Portable table entries: unrolled 4-state kernels where they exist.
// ---------------------------------------------------------------------------

fn pp_portable<T: Real>(
    dest: &mut [T],
    c1: &[T],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    if s == 4 {
        vector::partials_partials_4(dest, c1, c2, m1, m2, sp);
    } else {
        kernels::partials_partials(dest, c1, c2, m1, m2, s, sp);
    }
}

fn sp_portable<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    if s == 4 {
        vector::states_partials_4(dest, s1, c2, m1, m2, sp);
    } else {
        kernels::states_partials(dest, s1, c2, m1, m2, s, sp);
    }
}

fn ss_portable<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    s2: &[u32],
    m1: &[T],
    m2: &[T],
    s: usize,
    sp: usize,
) {
    if s == 4 {
        vector::states_states_4(dest, s1, s2, m1, m2, sp);
    } else {
        kernels::states_states(dest, s1, s2, m1, m2, s, sp);
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA intrinsic kernels (x86-64 only).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! Explicit AVX2+FMA kernels. Every `unsafe` target-feature function is
    //! reached only through the safe wrappers at the bottom, which the
    //! dispatch table hands out only after `avx2_available()` confirmed the
    //! host supports the instructions.

    use std::arch::x86_64::*;

    use beagle_core::GAP_STATE;

    use crate::kernels::{self, EdgeChild};

    /// Destination rows per tile in the wide-state kernels: 8 rows × two
    /// matrices of `sp` doubles stay comfortably inside L1 even for codon
    /// models (8 × 64 × 8 B × 2 = 8 KiB) while patterns stream past.
    const ROW_TILE: usize = 8;

    // ---- f64 helpers ----

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    /// Dot product of two `sp`-long buffers, `sp` a multiple of 4. Four
    /// accumulators hide FMA latency on 16-lane groups; the reduction order
    /// `(acc0+acc1)+(acc2+acc3)` is fixed so results do not depend on how
    /// the loop was peeled.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_pd(a: *const f64, b: *const f64, sp: usize) -> f64 {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut j = 0usize;
        while j + 16 <= sp {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a.add(j)), _mm256_loadu_pd(b.add(j)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(j + 4)),
                _mm256_loadu_pd(b.add(j + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(j + 8)),
                _mm256_loadu_pd(b.add(j + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(a.add(j + 12)),
                _mm256_loadu_pd(b.add(j + 12)),
                acc3,
            );
            j += 16;
        }
        while j < sp {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a.add(j)), _mm256_loadu_pd(b.add(j)), acc0);
            j += 4;
        }
        hsum_pd(_mm256_add_pd(
            _mm256_add_pd(acc0, acc1),
            _mm256_add_pd(acc2, acc3),
        ))
    }

    /// Column `j` of a 4-row matrix with row stride `sp`, as one vector.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn col_pd(m: *const f64, sp: usize, j: usize) -> __m256d {
        _mm256_set_pd(
            *m.add(3 * sp + j),
            *m.add(2 * sp + j),
            *m.add(sp + j),
            *m.add(j),
        )
    }

    // ---- f64 kernels ----

    /// Nucleotide partials×partials: matrices transposed to columns once
    /// per block, then one broadcast-FMA chain per child per pattern. The
    /// per-lane operation sequence `fma(m3,a3, fma(m2,a2, fma(m1,a1,
    /// m0*a0)))` is identical to the portable unrolled kernel, so the two
    /// paths agree bit for bit.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn pp4_pd(dest: &mut [f64], c1: &[f64], c2: &[f64], m1: &[f64], m2: &[f64]) {
        let m1p = m1.as_ptr();
        let m2p = m2.as_ptr();
        let (m10, m11, m12, m13) = (
            col_pd(m1p, 4, 0),
            col_pd(m1p, 4, 1),
            col_pd(m1p, 4, 2),
            col_pd(m1p, 4, 3),
        );
        let (m20, m21, m22, m23) = (
            col_pd(m2p, 4, 0),
            col_pd(m2p, 4, 1),
            col_pd(m2p, 4, 2),
            col_pd(m2p, 4, 3),
        );
        for ((d, a), b) in dest
            .chunks_exact_mut(4)
            .zip(c1.chunks_exact(4))
            .zip(c2.chunks_exact(4))
        {
            let mut s1 = _mm256_mul_pd(m10, _mm256_set1_pd(a[0]));
            s1 = _mm256_fmadd_pd(m11, _mm256_set1_pd(a[1]), s1);
            s1 = _mm256_fmadd_pd(m12, _mm256_set1_pd(a[2]), s1);
            s1 = _mm256_fmadd_pd(m13, _mm256_set1_pd(a[3]), s1);
            let mut s2 = _mm256_mul_pd(m20, _mm256_set1_pd(b[0]));
            s2 = _mm256_fmadd_pd(m21, _mm256_set1_pd(b[1]), s2);
            s2 = _mm256_fmadd_pd(m22, _mm256_set1_pd(b[2]), s2);
            s2 = _mm256_fmadd_pd(m23, _mm256_set1_pd(b[3]), s2);
            _mm256_storeu_pd(d.as_mut_ptr(), _mm256_mul_pd(s1, s2));
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn pp_pd(
        dest: &mut [f64],
        c1: &[f64],
        c2: &[f64],
        m1: &[f64],
        m2: &[f64],
        s: usize,
        sp: usize,
    ) {
        if s == 4 {
            // s == 4 in f64 always has stride 4 (already lane-aligned).
            debug_assert_eq!(sp, 4);
            return pp4_pd(dest, c1, c2, m1, m2);
        }
        let n_pat = dest.len() / sp;
        let mut i0 = 0;
        while i0 < s {
            let i1 = (i0 + ROW_TILE).min(s);
            for p in 0..n_pat {
                let a = c1.as_ptr().add(p * sp);
                let b = c2.as_ptr().add(p * sp);
                let d = dest.as_mut_ptr().add(p * sp);
                for i in i0..i1 {
                    let s1 = dot_pd(m1.as_ptr().add(i * sp), a, sp);
                    let s2 = dot_pd(m2.as_ptr().add(i * sp), b, sp);
                    *d.add(i) = s1 * s2;
                }
            }
            i0 = i1;
        }
    }

    /// Nucleotide states×partials: the tip child selects one matrix column
    /// (or all-ones for a gap) per pattern; the partials child runs the same
    /// broadcast-FMA chain as `pp4_pd`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sp4_pd(dest: &mut [f64], s1: &[u32], c2: &[f64], m1: &[f64], m2: &[f64]) {
        let m2p = m2.as_ptr();
        let (m20, m21, m22, m23) = (
            col_pd(m2p, 4, 0),
            col_pd(m2p, 4, 1),
            col_pd(m2p, 4, 2),
            col_pd(m2p, 4, 3),
        );
        let ones = _mm256_set1_pd(1.0);
        for ((d, &st), b) in dest
            .chunks_exact_mut(4)
            .zip(s1.iter())
            .zip(c2.chunks_exact(4))
        {
            let mut s2 = _mm256_mul_pd(m20, _mm256_set1_pd(b[0]));
            s2 = _mm256_fmadd_pd(m21, _mm256_set1_pd(b[1]), s2);
            s2 = _mm256_fmadd_pd(m22, _mm256_set1_pd(b[2]), s2);
            s2 = _mm256_fmadd_pd(m23, _mm256_set1_pd(b[3]), s2);
            let p1 = if st == GAP_STATE {
                ones
            } else {
                col_pd(m1.as_ptr(), 4, st as usize)
            };
            _mm256_storeu_pd(d.as_mut_ptr(), _mm256_mul_pd(p1, s2));
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sp_pd(
        dest: &mut [f64],
        s1: &[u32],
        c2: &[f64],
        m1: &[f64],
        m2: &[f64],
        s: usize,
        sp: usize,
    ) {
        if s == 4 {
            debug_assert_eq!(sp, 4);
            return sp4_pd(dest, s1, c2, m1, m2);
        }
        for ((d, &st), b) in dest
            .chunks_exact_mut(sp)
            .zip(s1.iter())
            .zip(c2.chunks_exact(sp))
        {
            for i in 0..s {
                let s2 = dot_pd(m2.as_ptr().add(i * sp), b.as_ptr(), sp);
                let p1 = if st == GAP_STATE {
                    1.0
                } else {
                    m1[i * sp + st as usize]
                };
                d[i] = p1 * s2;
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hmax_pd(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let m = _mm_max_pd(lo, hi);
        _mm_cvtsd_f64(_mm_max_sd(m, _mm_unpackhi_pd(m, m)))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn rescale_max_pd(block: &[f64], maxes: &mut [f64], sp: usize) {
        for (mx, q) in maxes.iter_mut().zip(block.chunks_exact(sp)) {
            let mut v = _mm256_loadu_pd(q.as_ptr());
            let mut j = 4;
            while j < sp {
                v = _mm256_max_pd(v, _mm256_loadu_pd(q.as_ptr().add(j)));
                j += 4;
            }
            // Pad lanes are zero, so the lane max is already >= 0 like the
            // scalar pass's zero-initialised running max.
            let m = hmax_pd(v);
            if m > *mx {
                *mx = m;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn rescale_apply_pd(block: &mut [f64], maxes: &[f64], sp: usize) {
        for (&mx, q) in maxes.iter().zip(block.chunks_exact_mut(sp)) {
            if mx > 0.0 {
                let inv = _mm256_set1_pd(1.0 / mx);
                let mut j = 0;
                while j < sp {
                    let p = q.as_mut_ptr().add(j);
                    _mm256_storeu_pd(p, _mm256_mul_pd(_mm256_loadu_pd(p), inv));
                    j += 4;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn root_pd(
        site_lnl: &mut [f64],
        root: &[f64],
        freqs: &[f64],
        cat_weights: &[f64],
        pattern_weights: &[f64],
        cumulative_scale: Option<&[f64]>,
        _s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        let mut total = 0.0;
        for lp in 0..site_lnl.len() {
            let p = p0 + lp;
            let mut site = 0.0f64;
            for (c, &w) in cat_weights.iter().enumerate() {
                let base = (c * n_pat_total + p) * sp;
                let sum = dot_pd(freqs.as_ptr(), root.as_ptr().add(base), sp);
                site = w.mul_add(sum, site);
            }
            let mut lnl = site.ln();
            if let Some(cs) = cumulative_scale {
                lnl += cs[p];
            }
            site_lnl[lp] = lnl;
            total += pattern_weights[p] * lnl;
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn edge_pp_pd(
        site_lnl: &mut [f64],
        parent: &[f64],
        child: &[f64],
        matrix: &[f64],
        freqs: &[f64],
        cat_weights: &[f64],
        pattern_weights: &[f64],
        cumulative_scale: Option<&[f64]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        let mut total = 0.0;
        for lp in 0..site_lnl.len() {
            let p = p0 + lp;
            let mut site = 0.0f64;
            for (c, &w) in cat_weights.iter().enumerate() {
                let base = (c * n_pat_total + p) * sp;
                let m = matrix.as_ptr().add(c * s * sp);
                let cp = child.as_ptr().add(base);
                let mut state_sum = 0.0f64;
                for i in 0..s {
                    let prop = dot_pd(m.add(i * sp), cp, sp);
                    state_sum += freqs[i] * parent[base + i] * prop;
                }
                site = w.mul_add(state_sum, site);
            }
            let mut lnl = site.ln();
            if let Some(cs) = cumulative_scale {
                lnl += cs[p];
            }
            site_lnl[lp] = lnl;
            total += pattern_weights[p] * lnl;
        }
        total
    }

    // ---- f32 helpers ----

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        _mm_cvtss_f32(_mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55)))
    }

    /// f32 dot over `sp` lanes, `sp` a multiple of 8.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_ps(a: *const f32, b: *const f32, sp: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut j = 0usize;
        while j + 32 <= sp {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), _mm256_loadu_ps(b.add(j)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(j + 8)),
                _mm256_loadu_ps(b.add(j + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(j + 16)),
                _mm256_loadu_ps(b.add(j + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(j + 24)),
                _mm256_loadu_ps(b.add(j + 24)),
                acc3,
            );
            j += 32;
        }
        while j < sp {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(j)), _mm256_loadu_ps(b.add(j)), acc0);
            j += 8;
        }
        hsum_ps(_mm256_add_ps(
            _mm256_add_ps(acc0, acc1),
            _mm256_add_ps(acc2, acc3),
        ))
    }

    /// Column `j` of a 4-row matrix with row stride `sp`, as one 128-bit
    /// vector (f32 nucleotide kernels only touch the first 4 lanes).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn col_ps(m: *const f32, sp: usize, j: usize) -> __m128 {
        _mm_set_ps(
            *m.add(3 * sp + j),
            *m.add(2 * sp + j),
            *m.add(sp + j),
            *m.add(j),
        )
    }

    // ---- f32 kernels ----

    /// f32 nucleotide partials×partials: 4 states live in an 8-lane padded
    /// stride; compute in 128-bit lanes and store only the live half so the
    /// pad stays zero. Same per-lane FMA chain as the portable kernel.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn pp4_ps(dest: &mut [f32], c1: &[f32], c2: &[f32], m1: &[f32], m2: &[f32], sp: usize) {
        let m1p = m1.as_ptr();
        let m2p = m2.as_ptr();
        let (m10, m11, m12, m13) = (
            col_ps(m1p, sp, 0),
            col_ps(m1p, sp, 1),
            col_ps(m1p, sp, 2),
            col_ps(m1p, sp, 3),
        );
        let (m20, m21, m22, m23) = (
            col_ps(m2p, sp, 0),
            col_ps(m2p, sp, 1),
            col_ps(m2p, sp, 2),
            col_ps(m2p, sp, 3),
        );
        for ((d, a), b) in dest
            .chunks_exact_mut(sp)
            .zip(c1.chunks_exact(sp))
            .zip(c2.chunks_exact(sp))
        {
            let mut s1 = _mm_mul_ps(m10, _mm_set1_ps(a[0]));
            s1 = _mm_fmadd_ps(m11, _mm_set1_ps(a[1]), s1);
            s1 = _mm_fmadd_ps(m12, _mm_set1_ps(a[2]), s1);
            s1 = _mm_fmadd_ps(m13, _mm_set1_ps(a[3]), s1);
            let mut s2 = _mm_mul_ps(m20, _mm_set1_ps(b[0]));
            s2 = _mm_fmadd_ps(m21, _mm_set1_ps(b[1]), s2);
            s2 = _mm_fmadd_ps(m22, _mm_set1_ps(b[2]), s2);
            s2 = _mm_fmadd_ps(m23, _mm_set1_ps(b[3]), s2);
            _mm_storeu_ps(d.as_mut_ptr(), _mm_mul_ps(s1, s2));
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn pp_ps(
        dest: &mut [f32],
        c1: &[f32],
        c2: &[f32],
        m1: &[f32],
        m2: &[f32],
        s: usize,
        sp: usize,
    ) {
        if s == 4 {
            return pp4_ps(dest, c1, c2, m1, m2, sp);
        }
        let n_pat = dest.len() / sp;
        let mut i0 = 0;
        while i0 < s {
            let i1 = (i0 + ROW_TILE).min(s);
            for p in 0..n_pat {
                let a = c1.as_ptr().add(p * sp);
                let b = c2.as_ptr().add(p * sp);
                let d = dest.as_mut_ptr().add(p * sp);
                for i in i0..i1 {
                    let s1 = dot_ps(m1.as_ptr().add(i * sp), a, sp);
                    let s2 = dot_ps(m2.as_ptr().add(i * sp), b, sp);
                    *d.add(i) = s1 * s2;
                }
            }
            i0 = i1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sp_ps(
        dest: &mut [f32],
        s1: &[u32],
        c2: &[f32],
        m1: &[f32],
        m2: &[f32],
        s: usize,
        sp: usize,
    ) {
        for ((d, &st), b) in dest
            .chunks_exact_mut(sp)
            .zip(s1.iter())
            .zip(c2.chunks_exact(sp))
        {
            for i in 0..s {
                let s2 = dot_ps(m2.as_ptr().add(i * sp), b.as_ptr(), sp);
                let p1 = if st == GAP_STATE {
                    1.0
                } else {
                    m1[i * sp + st as usize]
                };
                d[i] = p1 * s2;
            }
        }
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hmax_ps(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        _mm_cvtss_f32(_mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55)))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn rescale_max_ps(block: &[f32], maxes: &mut [f32], sp: usize) {
        for (mx, q) in maxes.iter_mut().zip(block.chunks_exact(sp)) {
            let mut v = _mm256_loadu_ps(q.as_ptr());
            let mut j = 8;
            while j < sp {
                v = _mm256_max_ps(v, _mm256_loadu_ps(q.as_ptr().add(j)));
                j += 8;
            }
            let m = hmax_ps(v);
            if m > *mx {
                *mx = m;
            }
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn rescale_apply_ps(block: &mut [f32], maxes: &[f32], sp: usize) {
        for (&mx, q) in maxes.iter().zip(block.chunks_exact_mut(sp)) {
            if mx > 0.0 {
                let inv = _mm256_set1_ps(1.0 / mx);
                let mut j = 0;
                while j < sp {
                    let p = q.as_mut_ptr().add(j);
                    _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), inv));
                    j += 8;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn root_ps(
        site_lnl: &mut [f32],
        root: &[f32],
        freqs: &[f32],
        cat_weights: &[f32],
        pattern_weights: &[f32],
        cumulative_scale: Option<&[f32]>,
        _s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        let mut total = 0.0f64;
        for lp in 0..site_lnl.len() {
            let p = p0 + lp;
            let mut site = 0.0f32;
            for (c, &w) in cat_weights.iter().enumerate() {
                let base = (c * n_pat_total + p) * sp;
                let sum = dot_ps(freqs.as_ptr(), root.as_ptr().add(base), sp);
                site = w.mul_add(sum, site);
            }
            let mut lnl = site.ln();
            if let Some(cs) = cumulative_scale {
                lnl += cs[p];
            }
            site_lnl[lp] = lnl;
            total += pattern_weights[p] as f64 * lnl as f64;
        }
        total
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn edge_pp_ps(
        site_lnl: &mut [f32],
        parent: &[f32],
        child: &[f32],
        matrix: &[f32],
        freqs: &[f32],
        cat_weights: &[f32],
        pattern_weights: &[f32],
        cumulative_scale: Option<&[f32]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        let mut total = 0.0f64;
        for lp in 0..site_lnl.len() {
            let p = p0 + lp;
            let mut site = 0.0f32;
            for (c, &w) in cat_weights.iter().enumerate() {
                let base = (c * n_pat_total + p) * sp;
                let m = matrix.as_ptr().add(c * s * sp);
                let cp = child.as_ptr().add(base);
                let mut state_sum = 0.0f32;
                for i in 0..s {
                    let prop = dot_ps(m.add(i * sp), cp, sp);
                    state_sum += freqs[i] * parent[base + i] * prop;
                }
                site = w.mul_add(state_sum, site);
            }
            let mut lnl = site.ln();
            if let Some(cs) = cumulative_scale {
                lnl += cs[p];
            }
            site_lnl[lp] = lnl;
            total += pattern_weights[p] as f64 * lnl as f64;
        }
        total
    }

    // ---- safe wrappers (table entries) ----
    //
    // Safety: `DispatchReal::dispatch` only returns the AVX2 table after
    // `avx2_available()` confirmed host support, so every `unsafe` call
    // below executes only on hardware with AVX2+FMA.

    pub(super) fn pp_f64(
        d: &mut [f64],
        c1: &[f64],
        c2: &[f64],
        m1: &[f64],
        m2: &[f64],
        s: usize,
        sp: usize,
    ) {
        debug_assert!(super::avx2_available());
        unsafe { pp_pd(d, c1, c2, m1, m2, s, sp) }
    }
    pub(super) fn sp_f64(
        d: &mut [f64],
        s1: &[u32],
        c2: &[f64],
        m1: &[f64],
        m2: &[f64],
        s: usize,
        sp: usize,
    ) {
        debug_assert!(super::avx2_available());
        unsafe { sp_pd(d, s1, c2, m1, m2, s, sp) }
    }
    pub(super) fn rescale_max_f64(block: &[f64], maxes: &mut [f64], sp: usize) {
        unsafe { rescale_max_pd(block, maxes, sp) }
    }
    pub(super) fn rescale_apply_f64(block: &mut [f64], maxes: &[f64], sp: usize) {
        unsafe { rescale_apply_pd(block, maxes, sp) }
    }
    #[allow(clippy::too_many_arguments)]
    pub(super) fn root_f64(
        site_lnl: &mut [f64],
        root: &[f64],
        freqs: &[f64],
        cat_weights: &[f64],
        pattern_weights: &[f64],
        cumulative_scale: Option<&[f64]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        unsafe {
            root_pd(
                site_lnl,
                root,
                freqs,
                cat_weights,
                pattern_weights,
                cumulative_scale,
                s,
                sp,
                n_pat_total,
                p0,
            )
        }
    }
    #[allow(clippy::too_many_arguments)]
    pub(super) fn edge_f64(
        site_lnl: &mut [f64],
        parent: &[f64],
        child: EdgeChild<'_, f64>,
        matrix: &[f64],
        freqs: &[f64],
        cat_weights: &[f64],
        pattern_weights: &[f64],
        cumulative_scale: Option<&[f64]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        match child {
            EdgeChild::Partials(cp) => unsafe {
                edge_pp_pd(
                    site_lnl,
                    parent,
                    cp,
                    matrix,
                    freqs,
                    cat_weights,
                    pattern_weights,
                    cumulative_scale,
                    s,
                    sp,
                    n_pat_total,
                    p0,
                )
            },
            // The states child does per-pattern matrix lookups, not dot
            // products — nothing to vectorize; use the scalar kernel.
            EdgeChild::States(_) => kernels::integrate_edge(
                site_lnl,
                parent,
                child,
                matrix,
                freqs,
                cat_weights,
                pattern_weights,
                cumulative_scale,
                s,
                sp,
                n_pat_total,
                p0,
            ),
        }
    }

    pub(super) fn pp_f32(
        d: &mut [f32],
        c1: &[f32],
        c2: &[f32],
        m1: &[f32],
        m2: &[f32],
        s: usize,
        sp: usize,
    ) {
        debug_assert!(super::avx2_available());
        unsafe { pp_ps(d, c1, c2, m1, m2, s, sp) }
    }
    pub(super) fn sp_f32(
        d: &mut [f32],
        s1: &[u32],
        c2: &[f32],
        m1: &[f32],
        m2: &[f32],
        s: usize,
        sp: usize,
    ) {
        debug_assert!(super::avx2_available());
        unsafe { sp_ps(d, s1, c2, m1, m2, s, sp) }
    }
    pub(super) fn rescale_max_f32(block: &[f32], maxes: &mut [f32], sp: usize) {
        unsafe { rescale_max_ps(block, maxes, sp) }
    }
    pub(super) fn rescale_apply_f32(block: &mut [f32], maxes: &[f32], sp: usize) {
        unsafe { rescale_apply_ps(block, maxes, sp) }
    }
    #[allow(clippy::too_many_arguments)]
    pub(super) fn root_f32(
        site_lnl: &mut [f32],
        root: &[f32],
        freqs: &[f32],
        cat_weights: &[f32],
        pattern_weights: &[f32],
        cumulative_scale: Option<&[f32]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        unsafe {
            root_ps(
                site_lnl,
                root,
                freqs,
                cat_weights,
                pattern_weights,
                cumulative_scale,
                s,
                sp,
                n_pat_total,
                p0,
            )
        }
    }
    #[allow(clippy::too_many_arguments)]
    pub(super) fn edge_f32(
        site_lnl: &mut [f32],
        parent: &[f32],
        child: EdgeChild<'_, f32>,
        matrix: &[f32],
        freqs: &[f32],
        cat_weights: &[f32],
        pattern_weights: &[f32],
        cumulative_scale: Option<&[f32]>,
        s: usize,
        sp: usize,
        n_pat_total: usize,
        p0: usize,
    ) -> f64 {
        match child {
            EdgeChild::Partials(cp) => unsafe {
                edge_pp_ps(
                    site_lnl,
                    parent,
                    cp,
                    matrix,
                    freqs,
                    cat_weights,
                    pattern_weights,
                    cumulative_scale,
                    s,
                    sp,
                    n_pat_total,
                    p0,
                )
            },
            EdgeChild::States(_) => kernels::integrate_edge(
                site_lnl,
                parent,
                child,
                matrix,
                freqs,
                cat_weights,
                pattern_weights,
                cumulative_scale,
                s,
                sp,
                n_pat_total,
                p0,
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Table resolution.
// ---------------------------------------------------------------------------

macro_rules! base_tables {
    ($t:ty) => {
        (
            KernelDispatch::<$t> {
                path: "scalar",
                partials_partials: kernels::partials_partials::<$t>,
                states_partials: kernels::states_partials::<$t>,
                states_states: kernels::states_states::<$t>,
                rescale_max: kernels::rescale_block_max::<$t>,
                rescale_apply: kernels::rescale_block_apply::<$t>,
                integrate_root: kernels::integrate_root::<$t>,
                integrate_edge: kernels::integrate_edge::<$t>,
            },
            KernelDispatch::<$t> {
                path: "portable",
                partials_partials: pp_portable::<$t>,
                states_partials: sp_portable::<$t>,
                states_states: ss_portable::<$t>,
                rescale_max: kernels::rescale_block_max::<$t>,
                rescale_apply: kernels::rescale_block_apply::<$t>,
                integrate_root: kernels::integrate_root::<$t>,
                integrate_edge: kernels::integrate_edge::<$t>,
            },
        )
    };
}

impl DispatchReal for f64 {
    fn dispatch(kind: DispatchKind) -> &'static KernelDispatch<f64> {
        static TABLES: (KernelDispatch<f64>, KernelDispatch<f64>) = base_tables!(f64);
        #[cfg(target_arch = "x86_64")]
        static AVX2: KernelDispatch<f64> = KernelDispatch {
            path: "avx2",
            partials_partials: avx2::pp_f64,
            states_partials: avx2::sp_f64,
            // states×states is pure matrix lookups — the unrolled portable
            // kernel is already optimal.
            states_states: ss_portable::<f64>,
            rescale_max: avx2::rescale_max_f64,
            rescale_apply: avx2::rescale_apply_f64,
            integrate_root: avx2::root_f64,
            integrate_edge: avx2::edge_f64,
        };
        match kind {
            DispatchKind::Scalar => &TABLES.0,
            #[cfg(target_arch = "x86_64")]
            DispatchKind::Avx2 if avx2_available() => &AVX2,
            _ => &TABLES.1,
        }
    }
}

impl DispatchReal for f32 {
    fn dispatch(kind: DispatchKind) -> &'static KernelDispatch<f32> {
        static TABLES: (KernelDispatch<f32>, KernelDispatch<f32>) = base_tables!(f32);
        #[cfg(target_arch = "x86_64")]
        static AVX2: KernelDispatch<f32> = KernelDispatch {
            path: "avx2",
            partials_partials: avx2::pp_f32,
            states_partials: avx2::sp_f32,
            states_states: ss_portable::<f32>,
            rescale_max: avx2::rescale_max_f32,
            rescale_apply: avx2::rescale_apply_f32,
            integrate_root: avx2::root_f32,
            integrate_edge: avx2::edge_f32,
        };
        match kind {
            DispatchKind::Scalar => &TABLES.0,
            #[cfg(target_arch = "x86_64")]
            DispatchKind::Avx2 if avx2_available() => &AVX2,
            _ => &TABLES.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random positive values in (0, 1].
    fn fill(seed: u64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 10_000;
                (x as f64 + 1.0) / 10_001.0
            })
            .collect()
    }

    fn padded(vals: &[f64], s: usize, sp: usize) -> Vec<f64> {
        let n = vals.len() / s;
        let mut out = vec![0.0; n * sp];
        for p in 0..n {
            out[p * sp..p * sp + s].copy_from_slice(&vals[p * s..(p + 1) * s]);
        }
        out
    }

    #[test]
    fn tables_have_expected_paths() {
        assert_eq!(
            <f64 as DispatchReal>::dispatch(DispatchKind::Scalar).path,
            "scalar"
        );
        assert_eq!(
            <f64 as DispatchReal>::dispatch(DispatchKind::Portable).path,
            "portable"
        );
        let avx = <f64 as DispatchReal>::dispatch(DispatchKind::Avx2);
        if avx2_available() {
            assert_eq!(avx.path, "avx2");
        } else {
            assert_eq!(avx.path, "portable");
        }
        assert_eq!(
            <f32 as DispatchReal>::dispatch(DispatchKind::Scalar).path,
            "scalar"
        );
    }

    #[test]
    fn avx2_wide_pp_matches_scalar() {
        if !avx2_available() {
            return;
        }
        let s = 61usize;
        let sp = s.div_ceil(4) * 4;
        let n_pat = 9;
        let m1 = padded(&fill(1, s * s), s, sp);
        let m2 = padded(&fill(2, s * s), s, sp);
        let c1 = padded(&fill(3, n_pat * s), s, sp);
        let c2 = padded(&fill(4, n_pat * s), s, sp);
        let mut d_simd = vec![0.0; n_pat * sp];
        let mut d_scalar = vec![0.0; n_pat * sp];
        let table = <f64 as DispatchReal>::dispatch(DispatchKind::Avx2);
        (table.partials_partials)(&mut d_simd, &c1, &c2, &m1, &m2, s, sp);
        kernels::partials_partials(&mut d_scalar, &c1, &c2, &m1, &m2, s, sp);
        for p in 0..n_pat {
            for k in 0..s {
                let (a, b) = (d_simd[p * sp + k], d_scalar[p * sp + k]);
                assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "pattern {p} state {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn avx2_pp4_bit_exact_with_portable() {
        if !avx2_available() {
            return;
        }
        let n_pat = 16;
        let m1 = fill(7, 16);
        let m2 = fill(8, 16);
        let c1 = fill(9, n_pat * 4);
        let c2 = fill(10, n_pat * 4);
        let mut d_simd = vec![0.0; n_pat * 4];
        let mut d_port = vec![0.0; n_pat * 4];
        let table = <f64 as DispatchReal>::dispatch(DispatchKind::Avx2);
        (table.partials_partials)(&mut d_simd, &c1, &c2, &m1, &m2, 4, 4);
        vector::partials_partials_4(&mut d_port, &c1, &c2, &m1, &m2, 4);
        assert_eq!(d_simd, d_port, "4-state AVX2 kernel must be bit-exact");
    }

    #[test]
    fn avx2_rescale_bit_exact_with_scalar() {
        if !avx2_available() {
            return;
        }
        let sp = 8;
        let n_pat = 13;
        let block: Vec<f64> = fill(21, n_pat * sp).iter().map(|x| x * 1e-6).collect();
        let table = <f64 as DispatchReal>::dispatch(DispatchKind::Avx2);
        let mut max_simd = vec![0.0; n_pat];
        let mut max_scalar = vec![0.0; n_pat];
        (table.rescale_max)(&block, &mut max_simd, sp);
        kernels::rescale_block_max(&block, &mut max_scalar, sp);
        assert_eq!(max_simd, max_scalar);
        let mut b_simd = block.clone();
        let mut b_scalar = block;
        (table.rescale_apply)(&mut b_simd, &max_simd, sp);
        kernels::rescale_block_apply(&mut b_scalar, &max_scalar, sp);
        assert_eq!(b_simd, b_scalar);
    }

    #[test]
    fn select_kind_honours_vectorized_flag() {
        // Non-vectorized instances must always get the scalar table.
        assert_eq!(select_kind(false), DispatchKind::Scalar);
        // Vectorized resolves to AVX2 or portable depending on host/env;
        // never scalar unless the env override is set.
        let k = select_kind(true);
        if force_scalar() {
            assert_eq!(k, DispatchKind::Scalar);
        } else {
            assert_ne!(k, DispatchKind::Scalar);
        }
    }
}
