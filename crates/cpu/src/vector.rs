//! Vectorized ("SSE") nucleotide kernels.
//!
//! BEAGLE's SSE implementation parallelizes across the four character-state
//! values of a nucleotide model with vector intrinsics. In Rust the
//! equivalent is explicit 4-wide unrolling with `mul_add`, which the
//! compiler lowers to SSE/AVX vector instructions on x86-64 (verified via
//! `cargo asm`: the inner body compiles to `mulpd`/`fmadd` sequences).
//! All kernels here are specialized to `state_count == 4`; the instance
//! falls back to the scalar kernels for other state counts.

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

/// 4-state specialization of [`crate::kernels::partials_partials`].
pub fn partials_partials_4<T: Real>(dest: &mut [T], c1: &[T], c2: &[T], m1: &[T], m2: &[T]) {
    debug_assert_eq!(m1.len(), 16);
    debug_assert_eq!(m2.len(), 16);
    debug_assert_eq!(dest.len() % 4, 0);
    // Hoist the matrices into locals so the compiler keeps them in registers.
    let m1: [T; 16] = m1.try_into().expect("4x4 matrix");
    let m2: [T; 16] = m2.try_into().expect("4x4 matrix");
    for ((d, a), b) in dest
        .chunks_exact_mut(4)
        .zip(c1.chunks_exact(4))
        .zip(c2.chunks_exact(4))
    {
        let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        // Row i of each matrix dotted with the child vector, fully unrolled.
        let s10 = m1[3].mul_add(a3, m1[2].mul_add(a2, m1[1].mul_add(a1, m1[0] * a0)));
        let s11 = m1[7].mul_add(a3, m1[6].mul_add(a2, m1[5].mul_add(a1, m1[4] * a0)));
        let s12 = m1[11].mul_add(a3, m1[10].mul_add(a2, m1[9].mul_add(a1, m1[8] * a0)));
        let s13 = m1[15].mul_add(a3, m1[14].mul_add(a2, m1[13].mul_add(a1, m1[12] * a0)));
        let s20 = m2[3].mul_add(b3, m2[2].mul_add(b2, m2[1].mul_add(b1, m2[0] * b0)));
        let s21 = m2[7].mul_add(b3, m2[6].mul_add(b2, m2[5].mul_add(b1, m2[4] * b0)));
        let s22 = m2[11].mul_add(b3, m2[10].mul_add(b2, m2[9].mul_add(b1, m2[8] * b0)));
        let s23 = m2[15].mul_add(b3, m2[14].mul_add(b2, m2[13].mul_add(b1, m2[12] * b0)));
        d[0] = s10 * s20;
        d[1] = s11 * s21;
        d[2] = s12 * s22;
        d[3] = s13 * s23;
    }
}

/// 4-state specialization of [`crate::kernels::states_partials`].
pub fn states_partials_4<T: Real>(dest: &mut [T], s1: &[u32], c2: &[T], m1: &[T], m2: &[T]) {
    debug_assert_eq!(dest.len(), s1.len() * 4);
    let m1v: [T; 16] = m1.try_into().expect("4x4 matrix");
    let m2v: [T; 16] = m2.try_into().expect("4x4 matrix");
    for ((d, &st), b) in dest
        .chunks_exact_mut(4)
        .zip(s1.iter())
        .zip(c2.chunks_exact(4))
    {
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        let s20 = m2v[3].mul_add(b3, m2v[2].mul_add(b2, m2v[1].mul_add(b1, m2v[0] * b0)));
        let s21 = m2v[7].mul_add(b3, m2v[6].mul_add(b2, m2v[5].mul_add(b1, m2v[4] * b0)));
        let s22 = m2v[11].mul_add(b3, m2v[10].mul_add(b2, m2v[9].mul_add(b1, m2v[8] * b0)));
        let s23 = m2v[15].mul_add(b3, m2v[14].mul_add(b2, m2v[13].mul_add(b1, m2v[12] * b0)));
        if st == GAP_STATE {
            d[0] = s20;
            d[1] = s21;
            d[2] = s22;
            d[3] = s23;
        } else {
            let j = st as usize;
            d[0] = m1v[j] * s20;
            d[1] = m1v[4 + j] * s21;
            d[2] = m1v[8 + j] * s22;
            d[3] = m1v[12 + j] * s23;
        }
    }
}

/// 4-state specialization of [`crate::kernels::states_states`].
pub fn states_states_4<T: Real>(dest: &mut [T], s1: &[u32], s2: &[u32], m1: &[T], m2: &[T]) {
    debug_assert_eq!(dest.len(), s1.len() * 4);
    let m1v: [T; 16] = m1.try_into().expect("4x4 matrix");
    let m2v: [T; 16] = m2.try_into().expect("4x4 matrix");
    for ((d, &st1), &st2) in dest.chunks_exact_mut(4).zip(s1.iter()).zip(s2.iter()) {
        let col1 = |i: usize| {
            if st1 == GAP_STATE {
                T::ONE
            } else {
                m1v[i * 4 + st1 as usize]
            }
        };
        let col2 = |i: usize| {
            if st2 == GAP_STATE {
                T::ONE
            } else {
                m2v[i * 4 + st2 as usize]
            }
        };
        d[0] = col1(0) * col2(0);
        d[1] = col1(1) * col2(1);
        d[2] = col1(2) * col2(2);
        d[3] = col1(3) * col2(3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn mats() -> (Vec<f64>, Vec<f64>) {
        let m1: Vec<f64> = (0..16).map(|i| 0.05 + i as f64 * 0.013).collect();
        let m2: Vec<f64> = (0..16).map(|i| 0.9 - i as f64 * 0.021).collect();
        (m1, m2)
    }

    #[test]
    fn pp4_matches_scalar() {
        let (m1, m2) = mats();
        let c1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin().abs()).collect();
        let c2: Vec<f64> = (0..40).map(|i| (i as f64 * 1.3).cos().abs()).collect();
        let mut dv = vec![0.0; 40];
        let mut ds = vec![0.0; 40];
        partials_partials_4(&mut dv, &c1, &c2, &m1, &m2);
        kernels::partials_partials(&mut ds, &c1, &c2, &m1, &m2, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn sp4_matches_scalar() {
        let (m1, m2) = mats();
        let s1: Vec<u32> = vec![0, 3, GAP_STATE, 2, 1];
        let c2: Vec<f64> = (0..20).map(|i| 0.1 + i as f64 * 0.04).collect();
        let mut dv = vec![0.0; 20];
        let mut ds = vec![0.0; 20];
        states_partials_4(&mut dv, &s1, &c2, &m1, &m2);
        kernels::states_partials(&mut ds, &s1, &c2, &m1, &m2, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn ss4_matches_scalar() {
        let (m1, m2) = mats();
        let s1: Vec<u32> = vec![1, GAP_STATE, 0];
        let s2: Vec<u32> = vec![2, 3, GAP_STATE];
        let mut dv = vec![0.0; 12];
        let mut ds = vec![0.0; 12];
        states_states_4(&mut dv, &s1, &s2, &m1, &m2);
        kernels::states_states(&mut ds, &s1, &s2, &m1, &m2, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn single_precision_path() {
        let m1: Vec<f32> = (0..16).map(|i| 0.05 + i as f32 * 0.013).collect();
        let m2: Vec<f32> = (0..16).map(|i| 0.9 - i as f32 * 0.021).collect();
        let c1 = vec![0.25f32; 8];
        let c2 = vec![0.5f32; 8];
        let mut dv = vec![0.0f32; 8];
        let mut ds = vec![0.0f32; 8];
        partials_partials_4(&mut dv, &c1, &c2, &m1, &m2);
        kernels::partials_partials(&mut ds, &c1, &c2, &m1, &m2, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
