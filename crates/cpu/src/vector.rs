//! Vectorized ("SSE") nucleotide kernels.
//!
//! BEAGLE's SSE implementation parallelizes across the four character-state
//! values of a nucleotide model with vector intrinsics. In Rust the
//! equivalent is explicit 4-wide unrolling with `mul_add`, which the
//! compiler lowers to SSE/AVX vector instructions on x86-64 (verified via
//! `cargo asm`: the inner body compiles to `mulpd`/`fmadd` sequences).
//! All kernels here are specialized to `state_count == 4`; the instance
//! falls back to the scalar kernels for other state counts. Explicit
//! AVX2 intrinsic kernels live in [`crate::simd`]; these portable versions
//! double as the non-x86 / forced-scalar fallback of the dispatch table.
//!
//! Like the scalar kernels, every function takes the padded stride `sp >= 4`
//! (f32 buffers pad nucleotide patterns to 8 lanes): pattern `p` starts at
//! `p*sp`, matrix row `i` at `i*sp`, and only the first 4 lanes are touched.

use beagle_core::real::Real;
use beagle_core::GAP_STATE;

/// 4-state specialization of [`crate::kernels::partials_partials`].
pub fn partials_partials_4<T: Real>(
    dest: &mut [T],
    c1: &[T],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    sp: usize,
) {
    debug_assert!(sp >= 4);
    debug_assert_eq!(m1.len(), 4 * sp);
    debug_assert_eq!(m2.len(), 4 * sp);
    debug_assert_eq!(dest.len() % sp, 0);
    for ((d, a), b) in dest
        .chunks_exact_mut(sp)
        .zip(c1.chunks_exact(sp))
        .zip(c2.chunks_exact(sp))
    {
        let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        // Row i of each matrix dotted with the child vector, fully unrolled.
        let r = |m: &[T], i: usize| (m[i * sp], m[i * sp + 1], m[i * sp + 2], m[i * sp + 3]);
        let (q0, q1, q2, q3) = r(m1, 0);
        let s10 = q3.mul_add(a3, q2.mul_add(a2, q1.mul_add(a1, q0 * a0)));
        let (q0, q1, q2, q3) = r(m1, 1);
        let s11 = q3.mul_add(a3, q2.mul_add(a2, q1.mul_add(a1, q0 * a0)));
        let (q0, q1, q2, q3) = r(m1, 2);
        let s12 = q3.mul_add(a3, q2.mul_add(a2, q1.mul_add(a1, q0 * a0)));
        let (q0, q1, q2, q3) = r(m1, 3);
        let s13 = q3.mul_add(a3, q2.mul_add(a2, q1.mul_add(a1, q0 * a0)));
        let (q0, q1, q2, q3) = r(m2, 0);
        let s20 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 1);
        let s21 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 2);
        let s22 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 3);
        let s23 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        d[0] = s10 * s20;
        d[1] = s11 * s21;
        d[2] = s12 * s22;
        d[3] = s13 * s23;
    }
}

/// 4-state specialization of [`crate::kernels::states_partials`].
pub fn states_partials_4<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    c2: &[T],
    m1: &[T],
    m2: &[T],
    sp: usize,
) {
    debug_assert!(sp >= 4);
    debug_assert_eq!(dest.len(), s1.len() * sp);
    for ((d, &st), b) in dest
        .chunks_exact_mut(sp)
        .zip(s1.iter())
        .zip(c2.chunks_exact(sp))
    {
        let (b0, b1, b2, b3) = (b[0], b[1], b[2], b[3]);
        let r = |m: &[T], i: usize| (m[i * sp], m[i * sp + 1], m[i * sp + 2], m[i * sp + 3]);
        let (q0, q1, q2, q3) = r(m2, 0);
        let s20 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 1);
        let s21 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 2);
        let s22 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        let (q0, q1, q2, q3) = r(m2, 3);
        let s23 = q3.mul_add(b3, q2.mul_add(b2, q1.mul_add(b1, q0 * b0)));
        if st == GAP_STATE {
            d[0] = s20;
            d[1] = s21;
            d[2] = s22;
            d[3] = s23;
        } else {
            let j = st as usize;
            d[0] = m1[j] * s20;
            d[1] = m1[sp + j] * s21;
            d[2] = m1[2 * sp + j] * s22;
            d[3] = m1[3 * sp + j] * s23;
        }
    }
}

/// 4-state specialization of [`crate::kernels::states_states`].
///
/// The gap check is hoisted out of the per-state work: each child's matrix
/// column (or the all-ones gap column) is selected once per pattern, so the
/// four products are branch-free.
pub fn states_states_4<T: Real>(
    dest: &mut [T],
    s1: &[u32],
    s2: &[u32],
    m1: &[T],
    m2: &[T],
    sp: usize,
) {
    debug_assert!(sp >= 4);
    debug_assert_eq!(dest.len(), s1.len() * sp);
    let column = |m: &[T], st: u32| {
        if st == GAP_STATE {
            (T::ONE, T::ONE, T::ONE, T::ONE)
        } else {
            let j = st as usize;
            (m[j], m[sp + j], m[2 * sp + j], m[3 * sp + j])
        }
    };
    for ((d, &st1), &st2) in dest.chunks_exact_mut(sp).zip(s1.iter()).zip(s2.iter()) {
        let (p10, p11, p12, p13) = column(m1, st1);
        let (p20, p21, p22, p23) = column(m2, st2);
        d[0] = p10 * p20;
        d[1] = p11 * p21;
        d[2] = p12 * p22;
        d[3] = p13 * p23;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    fn mats() -> (Vec<f64>, Vec<f64>) {
        let m1: Vec<f64> = (0..16).map(|i| 0.05 + i as f64 * 0.013).collect();
        let m2: Vec<f64> = (0..16).map(|i| 0.9 - i as f64 * 0.021).collect();
        (m1, m2)
    }

    #[test]
    fn pp4_matches_scalar() {
        let (m1, m2) = mats();
        let c1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.7).sin().abs()).collect();
        let c2: Vec<f64> = (0..40).map(|i| (i as f64 * 1.3).cos().abs()).collect();
        let mut dv = vec![0.0; 40];
        let mut ds = vec![0.0; 40];
        partials_partials_4(&mut dv, &c1, &c2, &m1, &m2, 4);
        kernels::partials_partials(&mut ds, &c1, &c2, &m1, &m2, 4, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn sp4_matches_scalar() {
        let (m1, m2) = mats();
        let s1: Vec<u32> = vec![0, 3, GAP_STATE, 2, 1];
        let c2: Vec<f64> = (0..20).map(|i| 0.1 + i as f64 * 0.04).collect();
        let mut dv = vec![0.0; 20];
        let mut ds = vec![0.0; 20];
        states_partials_4(&mut dv, &s1, &c2, &m1, &m2, 4);
        kernels::states_partials(&mut ds, &s1, &c2, &m1, &m2, 4, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn ss4_matches_scalar() {
        let (m1, m2) = mats();
        let s1: Vec<u32> = vec![1, GAP_STATE, 0];
        let s2: Vec<u32> = vec![2, 3, GAP_STATE];
        let mut dv = vec![0.0; 12];
        let mut ds = vec![0.0; 12];
        states_states_4(&mut dv, &s1, &s2, &m1, &m2, 4);
        kernels::states_states(&mut ds, &s1, &s2, &m1, &m2, 4, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-13);
        }
    }

    #[test]
    fn single_precision_path() {
        let m1: Vec<f32> = (0..16).map(|i| 0.05 + i as f32 * 0.013).collect();
        let m2: Vec<f32> = (0..16).map(|i| 0.9 - i as f32 * 0.021).collect();
        let c1 = vec![0.25f32; 8];
        let c2 = vec![0.5f32; 8];
        let mut dv = vec![0.0f32; 8];
        let mut ds = vec![0.0f32; 8];
        partials_partials_4(&mut dv, &c1, &c2, &m1, &m2, 4);
        kernels::partials_partials(&mut ds, &c1, &c2, &m1, &m2, 4, 4);
        for (a, b) in dv.iter().zip(&ds) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    /// Padded f32 layout (4 states in 8-lane stride) matches the dense run.
    #[test]
    fn padded_stride_matches_dense() {
        let sp = 8;
        let m_dense: Vec<f32> = (0..16).map(|i| 0.05 + i as f32 * 0.013).collect();
        let mut m_pad = vec![0.0f32; 4 * sp];
        for i in 0..4 {
            m_pad[i * sp..i * sp + 4].copy_from_slice(&m_dense[i * 4..(i + 1) * 4]);
        }
        let n_pat = 5;
        let c_dense: Vec<f32> = (0..n_pat * 4)
            .map(|i| (0.1 + i as f32 * 0.03).fract())
            .collect();
        let mut c_pad = vec![0.0f32; n_pat * sp];
        for p in 0..n_pat {
            c_pad[p * sp..p * sp + 4].copy_from_slice(&c_dense[p * 4..(p + 1) * 4]);
        }
        let mut d_dense = vec![0.0f32; n_pat * 4];
        let mut d_pad = vec![0.0f32; n_pat * sp];
        partials_partials_4(&mut d_dense, &c_dense, &c_dense, &m_dense, &m_dense, 4);
        partials_partials_4(&mut d_pad, &c_pad, &c_pad, &m_pad, &m_pad, sp);
        for p in 0..n_pat {
            for k in 0..4 {
                assert_eq!(d_dense[p * 4 + k], d_pad[p * sp + k]);
            }
            for k in 4..sp {
                assert_eq!(d_pad[p * sp + k], 0.0, "pad lane untouched");
            }
        }
    }
}
