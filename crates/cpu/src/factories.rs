//! Implementation factories ("plugins") for the CPU back-ends.
//!
//! One factory per implementation the paper benchmarks:
//! `CPU-serial`, `CPU-SSE`, `CPU-futures`, `CPU-threadcreate`,
//! `CPU-threadpool`. All share [`CpuInstance`]; the factory decides the
//! threading model, vectorization, thread count, and precision (from the
//! client's preference/requirement flags).

use std::sync::Arc;

use beagle_core::api::{BeagleInstance, InstanceConfig, InstanceDetails};
use beagle_core::error::Result;
use beagle_core::flags::Flags;
use beagle_core::manager::{ImplementationFactory, ImplementationManager};
use beagle_core::resource::ResourceDescription;

use crate::instance::{CpuInstance, Threading};
use crate::pool::ThreadPool;

/// Which threading model a factory builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadingModel {
    /// Original single-threaded implementation.
    Serial,
    /// One async task per independent tree operation.
    Futures,
    /// Threads created/joined per call.
    ThreadCreate,
    /// Persistent worker pool.
    ThreadPool,
}

/// Factory for CPU instances.
pub struct CpuFactory {
    model: ThreadingModel,
    vectorized: bool,
    threads: usize,
    /// Shared pool for `ThreadPool` instances (lazily created).
    pool: parking_lot::Mutex<Option<Arc<ThreadPool>>>,
}

impl CpuFactory {
    /// Build a factory with an explicit thread count (thread-create and
    /// thread-pool models; ignored by serial/futures).
    pub fn with_threads(model: ThreadingModel, vectorized: bool, threads: usize) -> Self {
        Self {
            model,
            vectorized,
            threads: threads.max(1),
            pool: parking_lot::Mutex::new(None),
        }
    }

    /// Build a factory using all available hardware threads.
    pub fn new(model: ThreadingModel, vectorized: bool) -> Self {
        Self::with_threads(model, vectorized, host_threads())
    }

    fn precision_is_single(prefs: Flags, reqs: Flags) -> bool {
        reqs.contains(Flags::PRECISION_SINGLE)
            || (prefs.contains(Flags::PRECISION_SINGLE) && !reqs.contains(Flags::PRECISION_DOUBLE))
    }

    fn threading_flag(&self) -> Flags {
        match self.model {
            ThreadingModel::Serial => Flags::THREADING_NONE,
            ThreadingModel::Futures => Flags::THREADING_FUTURES,
            ThreadingModel::ThreadCreate => Flags::THREADING_THREAD_CREATE,
            ThreadingModel::ThreadPool => Flags::THREADING_THREAD_POOL,
        }
    }

    fn make_threading(&self) -> Threading {
        match self.model {
            ThreadingModel::Serial => Threading::Serial,
            ThreadingModel::Futures => Threading::Futures,
            ThreadingModel::ThreadCreate => Threading::ThreadCreate {
                threads: self.threads,
            },
            ThreadingModel::ThreadPool => {
                let mut guard = self.pool.lock();
                let pool = guard
                    .get_or_insert_with(|| Arc::new(ThreadPool::new(self.threads)))
                    .clone();
                Threading::ThreadPool { pool }
            }
        }
    }
}

/// Number of hardware threads on this host.
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ImplementationFactory for CpuFactory {
    fn name(&self) -> &str {
        match (self.model, self.vectorized) {
            (ThreadingModel::Serial, false) => "CPU-serial",
            (ThreadingModel::Serial, true) => "CPU-SSE",
            (ThreadingModel::Futures, false) => "CPU-futures",
            (ThreadingModel::Futures, true) => "CPU-futures-SSE",
            (ThreadingModel::ThreadCreate, false) => "CPU-threadcreate",
            (ThreadingModel::ThreadCreate, true) => "CPU-threadcreate-SSE",
            (ThreadingModel::ThreadPool, false) => "CPU-threadpool",
            (ThreadingModel::ThreadPool, true) => "CPU-threadpool-SSE",
        }
    }

    fn supported_flags(&self) -> Flags {
        let vec_flag = if self.vectorized {
            Flags::VECTOR_SSE
        } else {
            Flags::VECTOR_NONE
        };
        Flags::PROCESSOR_CPU
            | Flags::FRAMEWORK_CPU
            | Flags::PRECISION_SINGLE
            | Flags::PRECISION_DOUBLE
            | Flags::SCALING_MANUAL
            | vec_flag
            | self.threading_flag()
    }

    fn resource(&self) -> ResourceDescription {
        ResourceDescription::host_cpu(self.threads)
    }

    fn priority(&self) -> i32 {
        // Within CPU implementations: thread-pool is the best default
        // (Table III); SSE beats plain at equal threading.
        let base = match self.model {
            ThreadingModel::ThreadPool => 30,
            ThreadingModel::ThreadCreate => 20,
            ThreadingModel::Futures => 10,
            ThreadingModel::Serial => 0,
        };
        base + i32::from(self.vectorized)
    }

    fn supports_config(&self, config: &InstanceConfig) -> bool {
        // The vectorized kernels handle arbitrary state counts: nucleotide
        // models take the 4-state specializations, everything else the
        // cache-blocked wide-state tiles (see `crate::simd`).
        config.validate().is_ok()
    }

    fn create(
        &self,
        config: &InstanceConfig,
        prefs: Flags,
        reqs: Flags,
    ) -> Result<Box<dyn BeagleInstance>> {
        let single = Self::precision_is_single(prefs, reqs);
        // The typed scalar pin (InstanceSpec::force_scalar); the
        // BEAGLE_FORCE_SCALAR environment variable still overrides it
        // inside `select_kind_with`.
        let typed_scalar = (prefs | reqs).contains(Flags::KERNEL_SCALAR);
        let kind = crate::simd::select_kind_with(self.vectorized, typed_scalar);
        // Report only the precision actually in use.
        let mut flags = Flags(
            self.supported_flags().0 & !(Flags::PRECISION_SINGLE.0 | Flags::PRECISION_DOUBLE.0),
        );
        flags |= if single {
            Flags::PRECISION_SINGLE
        } else {
            Flags::PRECISION_DOUBLE
        };
        // Report the kernel path the instance will actually resolve to:
        // vectorized instances on an AVX2+FMA host (without a scalar
        // override) run the intrinsic kernels.
        if kind == crate::simd::DispatchKind::Avx2 {
            flags |= Flags::VECTOR_AVX2;
        }
        let details = InstanceDetails {
            implementation_name: self.name().to_string(),
            resource_name: self.resource().name,
            flags,
            thread_count: match self.model {
                ThreadingModel::Serial | ThreadingModel::Futures => 1,
                _ => self.threads,
            },
        };
        let stats = prefs.contains(Flags::INSTANCE_STATS);
        if single {
            let mut inst = CpuInstance::<f32>::with_dispatch_kind(
                *config,
                self.make_threading(),
                kind,
                details,
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        } else {
            let mut inst = CpuInstance::<f64>::with_dispatch_kind(
                *config,
                self.make_threading(),
                kind,
                details,
            )?;
            if stats {
                inst.enable_statistics();
            }
            Ok(Box::new(inst))
        }
    }
}

/// Register the full CPU implementation family on a manager.
pub fn register_cpu_factories(manager: &mut ImplementationManager) {
    manager.register(Box::new(CpuFactory::new(ThreadingModel::Serial, false)));
    manager.register(Box::new(CpuFactory::new(ThreadingModel::Serial, true)));
    manager.register(Box::new(CpuFactory::new(ThreadingModel::Futures, false)));
    manager.register(Box::new(CpuFactory::new(
        ThreadingModel::ThreadCreate,
        false,
    )));
    manager.register(Box::new(CpuFactory::new(ThreadingModel::ThreadPool, false)));
    manager.register(Box::new(CpuFactory::new(ThreadingModel::ThreadPool, true)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use beagle_core::InstanceSpec;

    fn cfg() -> InstanceConfig {
        InstanceConfig::for_tree(4, 100, 4, 2)
    }

    #[test]
    fn manager_picks_threadpool_by_default() {
        let mut m = ImplementationManager::new();
        register_cpu_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg()).instantiate(&m).unwrap();
        assert!(inst
            .details()
            .implementation_name
            .starts_with("CPU-threadpool"));
    }

    #[test]
    fn requirement_selects_serial() {
        let mut m = ImplementationManager::new();
        register_cpu_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg())
            .require(Flags::THREADING_NONE)
            .instantiate(&m)
            .unwrap();
        assert!(inst.details().implementation_name.contains("CPU-"));
        assert!(inst.details().flags.contains(Flags::THREADING_NONE));
    }

    #[test]
    fn single_precision_honored() {
        let mut m = ImplementationManager::new();
        register_cpu_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg())
            .prefer(Flags::PRECISION_SINGLE)
            .instantiate(&m)
            .unwrap();
        assert!(inst.details().flags.contains(Flags::PRECISION_SINGLE));
    }

    #[test]
    fn stats_preference_enables_statistics() {
        let mut m = ImplementationManager::new();
        register_cpu_factories(&mut m);
        let inst = InstanceSpec::with_config(cfg())
            .with_stats()
            .instantiate(&m)
            .unwrap();
        // Under the core crate's `obs-disabled` feature recording is
        // compiled out entirely; mirror whatever the build supports.
        let obs_compiled_in = beagle_core::Recorder::new(true).is_enabled();
        assert_eq!(
            inst.statistics().is_some(),
            obs_compiled_in,
            "INSTANCE_STATS preference must enable the recorder when obs is compiled in"
        );
        let plain = InstanceSpec::with_config(cfg()).instantiate(&m).unwrap();
        assert!(plain.statistics().is_none(), "stats are strictly opt-in");
    }

    #[test]
    fn vectorized_factory_accepts_codon() {
        let f = CpuFactory::new(ThreadingModel::Serial, true);
        let mut c = cfg();
        c.state_count = 61;
        assert!(f.supports_config(&c), "wide-state tiles cover codon models");
        let plain = CpuFactory::new(ThreadingModel::Serial, false);
        assert!(plain.supports_config(&c));
    }
}
