//! The persistent thread pool behind the paper's winning threading model.
//!
//! §VI-C of the paper: "this final iteration of our CPU threading solution
//! involved modifying the thread-create approach to use a pool of C++
//! standard library threads". The pool here is the Rust equivalent: workers
//! blocked on a crossbeam channel, a countdown latch for batch completion,
//! and a *scoped* submission API so kernels can borrow instance buffers
//! without `Arc`-wrapping every slice.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads that executes batches of borrowed
/// closures to completion.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// Countdown latch: `wait` blocks until `count_down` has been called `n` times.
struct Latch {
    remaining: Mutex<usize>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Self { remaining: Mutex::new(n), cv: Condvar::new() }
    }

    fn count_down(&self) {
        let mut rem = self.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut rem = self.remaining.lock();
        while *rem > 0 {
            self.cv.wait(&mut rem);
        }
    }
}

impl ThreadPool {
    /// Spawn `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("beagle-worker-{i}"))
                    .spawn(move || {
                        // Channel disconnect (pool drop) ends the loop.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Run a batch of tasks that may borrow from the caller's stack, and
    /// block until all of them complete.
    ///
    /// Safety of the lifetime erasure: the call does not return until every
    /// task has finished (enforced by the latch, counted down even on task
    /// panic), so no borrow in a task can outlive its referent. This is the
    /// standard scoped-thread-pool construction.
    pub fn run_batch<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        let panicked = Arc::new(AtomicBool::new(false));
        let sender = self.sender.as_ref().expect("pool alive");
        for task in tasks {
            // SAFETY: see method docs — the latch wait below guarantees the
            // closure (and everything it borrows) is done before we return.
            let task: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute(task) };
            let latch = Arc::clone(&latch);
            let panicked = Arc::clone(&panicked);
            sender
                .send(Box::new(move || {
                    let result = std::panic::catch_unwind(AssertUnwindSafe(task));
                    if result.is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    latch.count_down();
                }))
                .expect("worker channel alive");
        }
        latch.wait();
        if panicked.load(Ordering::SeqCst) {
            panic!("a thread-pool task panicked");
        }
    }

    /// Split `[0, n)` into `chunks` near-equal contiguous ranges (the paper's
    /// load-balancing: "the sequence of independent patterns is broken up
    /// into equal sizes according to the number of CPU hardware threads").
    pub fn partition(n: usize, chunks: usize) -> Vec<(usize, usize)> {
        partition_range(n, chunks)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit, then join them.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Split `[0, n)` into at most `chunks` near-equal, non-empty ranges.
pub fn partition_range(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_can_mutate_disjoint_borrows() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 9000];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(3000)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for x in chunk.iter_mut() {
                            *x = i as u64 + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }
        assert!(data[..3000].iter().all(|&x| x == 1));
        assert!(data[3000..6000].iter().all(|&x| x == 2));
        assert!(data[6000..].iter().all(|&x| x == 3));
    }

    #[test]
    fn sequential_batches_reuse_workers() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let s = &sum;
                    Box::new(move || {
                        s.fetch_add(i + round, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round);
        }
    }

    #[test]
    #[should_panic(expected = "thread-pool task panicked")]
    fn panics_propagate_without_deadlock() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
        ];
        pool.run_batch(tasks);
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = ThreadPool::new(2);
        pool.run_batch(Vec::new());
    }

    #[test]
    fn partition_covers_range_exactly() {
        for n in [0usize, 1, 5, 511, 512, 10_000] {
            for c in [1usize, 2, 7, 56] {
                let parts = partition_range(n, c);
                let total: usize = parts.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, n, "n={n} c={c}");
                // Contiguous and non-empty.
                let mut prev = 0;
                for &(a, b) in &parts {
                    assert_eq!(a, prev);
                    assert!(b > a);
                    prev = b;
                }
                // Balanced within 1.
                if !parts.is_empty() {
                    let lens: Vec<usize> = parts.iter().map(|(a, b)| b - a).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }
}
