//! The persistent thread pool behind the paper's winning threading model.
//!
//! §VI-C of the paper: "this final iteration of our CPU threading solution
//! involved modifying the thread-create approach to use a pool of C++
//! standard library threads". The pool here is the Rust equivalent, with one
//! addition aimed at the traversal hot path: dispatching a batch performs
//! **no allocation**. Instead of boxing one closure per task and pushing
//! them through a channel, the submitter installs a single *batch
//! descriptor* — a raw pointer to a caller-owned task slice plus a
//! monomorphized trampoline — under the pool mutex; workers claim task
//! indices from it and the submitter participates until the batch drains.
//! The per-batch latch, panic flag, and job queue of the previous design
//! (one `Vec<Box<dyn FnOnce>>`, one `Arc<Latch>`, and one
//! `Arc<AtomicBool>` per dispatch) are all folded into that descriptor.
//!
//! Safety of the borrow erasure: `run_tasks` does not return until every
//! task in the batch has finished (tracked by the `remaining` counter,
//! decremented even on task panic), so no borrow held by a task can outlive
//! its referent — the standard scoped-pool argument. Task indices are
//! claimed under the mutex, so each task is executed exactly once and no
//! two workers ever touch the same element.

use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// One in-flight batch: an erased view of the submitter's `&mut [Task]`.
struct Batch {
    /// Base of the task slice.
    data: *mut u8,
    /// The caller's `fn(&mut Task)`, erased (recovered by `call`).
    run_ctx: *const (),
    /// Invokes `run_ctx` on `data[idx]` with the right `Task` type.
    call: unsafe fn(*mut u8, *const (), usize),
    /// Total number of tasks.
    len: usize,
    /// Next unclaimed task index.
    next: usize,
    /// Tasks claimed or unclaimed but not yet finished.
    remaining: usize,
    /// Set when any task panicked; re-raised by the submitter.
    panicked: bool,
}

// SAFETY: the raw pointers are only dereferenced by the batch protocol —
// distinct indices on distinct threads, all before the submitting call
// returns — and the submitter's `&mut [Task]` bound requires `Task: Send`.
unsafe impl Send for Batch {}

struct Shared {
    /// The active batch, if any. Installed by a submitter once the slot is
    /// free; cleared by the same submitter after completion (so it can read
    /// the panic flag race-free).
    batch: Option<Batch>,
    shutdown: bool,
}

struct Inner {
    shared: Mutex<Shared>,
    /// Workers wait here for a batch with unclaimed tasks (or shutdown).
    work_cv: Condvar,
    /// Submitters wait here for batch completion / the slot to free up.
    done_cv: Condvar,
}

/// A fixed-size pool of worker threads that executes batches of borrowed
/// tasks to completion, without allocating on the dispatch path.
pub struct ThreadPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

unsafe fn call_task<Task>(data: *mut u8, run_ctx: *const (), idx: usize) {
    // SAFETY (caller): `data` points at a live `[Task]` with `idx < len`,
    // `run_ctx` was produced from a `fn(&mut Task)` of the same `Task`, and
    // no other thread holds index `idx`.
    let run: fn(&mut Task) = unsafe { std::mem::transmute(run_ctx) };
    let task = unsafe { &mut *(data as *mut Task).add(idx) };
    run(task);
}

impl ThreadPool {
    /// Spawn `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            shared: Mutex::new(Shared {
                batch: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("beagle-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { inner, workers }
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.workers.len()
    }

    /// Run `run` over every element of `tasks` on the pool (the submitting
    /// thread participates), blocking until all have finished. Allocation-
    /// free: the batch descriptor lives in the pool's shared slot and the
    /// tasks stay in the caller's slice.
    ///
    /// Panics with "a thread-pool task panicked" if any task panicked (after
    /// the whole batch has drained, so borrows stay sound).
    pub fn run_tasks<Task: Send>(&self, tasks: &mut [Task], run: fn(&mut Task)) {
        if tasks.is_empty() {
            return;
        }
        let len = tasks.len();
        {
            let mut g = self.inner.shared.lock();
            // Wait for the slot: another thread's batch may be in flight.
            while g.batch.is_some() {
                self.inner.done_cv.wait(&mut g);
            }
            g.batch = Some(Batch {
                data: tasks.as_mut_ptr() as *mut u8,
                run_ctx: run as *const (),
                call: call_task::<Task>,
                len,
                next: 0,
                remaining: len,
                panicked: false,
            });
        }
        self.inner.work_cv.notify_all();

        // Participate: claim tasks alongside the workers.
        loop {
            let mut g = self.inner.shared.lock();
            let b = g.batch.as_mut().expect("own batch present");
            if b.next >= b.len {
                break;
            }
            let idx = b.next;
            b.next += 1;
            let (data, run_ctx, call) = (b.data, b.run_ctx, b.call);
            drop(g);
            // SAFETY: index claimed exclusively above; slice outlives this
            // call because we don't return until `remaining == 0`.
            let result =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { call(data, run_ctx, idx) }));
            let mut g = self.inner.shared.lock();
            let b = g.batch.as_mut().expect("own batch present");
            if result.is_err() {
                b.panicked = true;
            }
            b.remaining -= 1;
            if b.remaining == 0 {
                self.inner.done_cv.notify_all();
            }
        }

        // Drain: wait for workers to finish the tail, then clear the slot.
        let mut g = self.inner.shared.lock();
        while g.batch.as_ref().expect("own batch present").remaining > 0 {
            self.inner.done_cv.wait(&mut g);
        }
        let panicked = g.batch.take().expect("own batch present").panicked;
        // The slot is free again: wake submitters queued for it.
        self.inner.done_cv.notify_all();
        drop(g);
        if panicked {
            panic!("a thread-pool task panicked");
        }
    }

    /// Run a batch of boxed closures that may borrow from the caller's
    /// stack, blocking until all complete. Compatibility surface over
    /// [`ThreadPool::run_tasks`] — each box is taken out of the slice and
    /// replaced with a zero-sized no-op (no allocation).
    pub fn run_batch<'env>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        self.run_tasks(&mut tasks, |slot| {
            let job = std::mem::replace(slot, Box::new(|| {}));
            job();
        });
    }

    /// Split `[0, n)` into `chunks` near-equal contiguous ranges (the paper's
    /// load-balancing: "the sequence of independent patterns is broken up
    /// into equal sizes according to the number of CPU hardware threads").
    pub fn partition(n: usize, chunks: usize) -> Vec<(usize, usize)> {
        partition_range(n, chunks)
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let mut g = inner.shared.lock();
        loop {
            if g.shutdown {
                return;
            }
            if let Some(b) = g.batch.as_ref() {
                if b.next < b.len {
                    break;
                }
            }
            inner.work_cv.wait(&mut g);
        }
        let b = g.batch.as_mut().expect("checked above");
        let idx = b.next;
        b.next += 1;
        let (data, run_ctx, call) = (b.data, b.run_ctx, b.call);
        drop(g);
        // SAFETY: exclusive claim of `idx`; the submitter blocks until
        // `remaining` hits zero, keeping the slice alive.
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { call(data, run_ctx, idx) }));
        let mut g = inner.shared.lock();
        // The batch cannot have been replaced: it is only cleared by its
        // submitter after `remaining == 0`, and our decrement is pending.
        let b = g.batch.as_mut().expect("batch alive until drained");
        if result.is_err() {
            b.panicked = true;
        }
        b.remaining -= 1;
        if b.remaining == 0 {
            inner.done_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shared.lock().shutdown = true;
        self.inner.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Split `[0, n)` into at most `chunks` near-equal, non-empty ranges.
pub fn partition_range(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = chunks.max(1).min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_runs_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..100)
            .map(|_| {
                let c = &counter;
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn tasks_can_mutate_disjoint_borrows() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 9000];
        {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
                .chunks_mut(3000)
                .enumerate()
                .map(|(i, chunk)| {
                    Box::new(move || {
                        for x in chunk.iter_mut() {
                            *x = i as u64 + 1;
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
        }
        assert!(data[..3000].iter().all(|&x| x == 1));
        assert!(data[3000..6000].iter().all(|&x| x == 2));
        assert!(data[6000..].iter().all(|&x| x == 3));
    }

    #[test]
    fn sequential_batches_reuse_workers() {
        let pool = ThreadPool::new(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                .map(|i| {
                    let s = &sum;
                    Box::new(move || {
                        s.fetch_add(i + round, Ordering::SeqCst);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run_batch(tasks);
            assert_eq!(sum.load(Ordering::SeqCst), 6 + 4 * round);
        }
    }

    /// The typed task API mutates caller-owned structs in place.
    #[test]
    fn run_tasks_mutates_in_place() {
        struct Work {
            input: u64,
            output: u64,
        }
        let pool = ThreadPool::new(3);
        let mut items: Vec<Work> = (0..64)
            .map(|i| Work {
                input: i,
                output: 0,
            })
            .collect();
        for _ in 0..20 {
            pool.run_tasks(&mut items, |w| w.output += w.input * 2);
        }
        for (i, w) in items.iter().enumerate() {
            assert_eq!(w.output, i as u64 * 2 * 20);
        }
    }

    /// Tasks borrowing the submitter's stack stay sound across many rounds.
    #[test]
    fn run_tasks_with_borrowed_slices() {
        let pool = ThreadPool::new(4);
        let mut data = vec![1.0f64; 4096];
        let mut chunks: Vec<&mut [f64]> = data.chunks_mut(512).collect();
        pool.run_tasks(&mut chunks, |chunk| {
            for x in chunk.iter_mut() {
                *x *= 2.0;
            }
        });
        drop(chunks);
        assert!(data.iter().all(|&x| x == 2.0));
    }

    #[test]
    #[should_panic(expected = "thread-pool task panicked")]
    fn panics_propagate_without_deadlock() {
        let pool = ThreadPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| {})];
        pool.run_batch(tasks);
    }

    /// The pool survives a panicked batch and runs later batches normally.
    #[test]
    fn pool_usable_after_panicked_batch() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut items = vec![0usize, 1, 2, 3];
            pool.run_tasks(&mut items, |i| {
                if *i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let mut items = vec![0usize; 8];
        pool.run_tasks(&mut items, |i| *i += 5);
        assert!(items.iter().all(|&x| x == 5));
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = ThreadPool::new(2);
        pool.run_batch(Vec::new());
        let mut none: [u8; 0] = [];
        pool.run_tasks(&mut none, |_| {});
    }

    /// Concurrent submitters queue for the batch slot without deadlock.
    #[test]
    fn concurrent_submitters_serialize() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let mut items = vec![1usize; 8];
                        pool.run_tasks(&mut items, |i| *i += 1);
                        total.fetch_add(items.iter().sum::<usize>(), Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 16);
    }

    #[test]
    fn partition_covers_range_exactly() {
        for n in [0usize, 1, 5, 511, 512, 10_000] {
            for c in [1usize, 2, 7, 56] {
                let parts = partition_range(n, c);
                let total: usize = parts.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, n, "n={n} c={c}");
                // Contiguous and non-empty.
                let mut prev = 0;
                for &(a, b) in &parts {
                    assert_eq!(a, prev);
                    assert!(b > a);
                    prev = b;
                }
                // Balanced within 1.
                if !parts.is_empty() {
                    let lens: Vec<usize> = parts.iter().map(|(a, b)| b - a).collect();
                    let min = lens.iter().min().unwrap();
                    let max = lens.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }
}
