//! # beagle-cpu
//!
//! CPU implementations for BEAGLE-RS, covering the full evolution the ICPP
//! 2017 paper describes in §VI:
//!
//! 1. **serial** — the original single-threaded model,
//! 2. **SSE** — vectorized 4-state kernels (explicit unrolling + `mul_add`,
//!    which LLVM lowers to SSE/AVX on x86-64),
//! 3. **futures** — one asynchronous task per independent tree operation,
//! 4. **thread-create** — per-call thread spawn splitting the pattern range,
//! 5. **thread-pool** — a persistent worker pool (the paper's winner), which
//!    also parallelizes root-likelihood integration.
//!
//! All models share one instance type ([`instance::CpuInstance`]) and one
//! set of scalar kernels ([`kernels`]); the vectorized variants live in
//! [`vector`]. Register the whole family on an
//! [`beagle_core::ImplementationManager`] with
//! [`factories::register_cpu_factories`].

// Likelihood kernels and small numeric routines are written with explicit
// index loops on purpose: the loop structure mirrors the work-item/work-group
// decomposition the paper describes, and that clarity outweighs iterator style.
#![allow(clippy::needless_range_loop)]

pub mod factories;
pub mod instance;
pub mod kernels;
pub mod pool;
pub mod simd;
pub mod vector;

pub use factories::{host_threads, register_cpu_factories, CpuFactory, ThreadingModel};
pub use instance::{CpuInstance, Threading, MIN_PATTERNS_FOR_THREADING};
pub use pool::ThreadPool;
pub use simd::{host_fma_available, DispatchKind, DispatchReal, KernelDispatch};
