//! The CPU instance: one type, four execution strategies.
//!
//! [`CpuInstance`] owns an [`InstanceBuffers`] arena and executes the
//! partial-likelihoods bottleneck with whichever [`Threading`] model it was
//! created with — the three iterations the paper describes in §VI (futures,
//! thread-create, thread-pool) plus the original serial model — optionally
//! combined with the vectorized 4-state kernels.

use beagle_core::api::{BeagleInstance, InstanceConfig, InstanceDetails};
use beagle_core::buffers::{ChildOperand, InstanceBuffers};
use beagle_core::error::{BeagleError, Result};
use beagle_core::ops::{dependency_levels, Operation};
use beagle_core::real::{widen_slice, Real};

use crate::kernels::{self, EdgeChild};
use crate::pool::{partition_range, ThreadPool};
use crate::vector;

/// Patterns below this threshold run serially even under a threading model —
/// §VI-B: "to prevent small problem sizes from being slower than the previous
/// serial implementation, we set a minimum sequence length of 512 patterns
/// for threading to be used".
pub const MIN_PATTERNS_FOR_THREADING: usize = 512;

/// Execution strategy for the likelihood kernels.
pub enum Threading {
    /// Original single-threaded model.
    Serial,
    /// One asynchronous task per *tree operation*; operations that are
    /// independent in the topology run concurrently (§VI-A).
    Futures,
    /// Threads created and joined per `update_partials` call, splitting the
    /// pattern range evenly (§VI-B).
    ThreadCreate {
        /// Number of threads to create per call.
        threads: usize,
    },
    /// Persistent worker pool; also parallelizes root integration (§VI-C).
    /// The pool is shared (`Arc`) so many instances — e.g. one per MCMC
    /// chain — reuse the same workers instead of oversubscribing the host.
    ThreadPool {
        /// The shared pool.
        pool: std::sync::Arc<ThreadPool>,
    },
}

impl Threading {
    fn thread_count(&self) -> usize {
        match self {
            Threading::Serial | Threading::Futures => 1,
            Threading::ThreadCreate { threads } => *threads,
            Threading::ThreadPool { pool } => pool.thread_count(),
        }
    }
}

/// A CPU-resident BEAGLE instance with precision `T`.
pub struct CpuInstance<T: Real> {
    bufs: InstanceBuffers<T>,
    threading: Threading,
    /// Use the 4-state vectorized kernels when the state count allows.
    vectorized: bool,
    /// Minimum pattern count before pattern-level threading engages.
    min_patterns: usize,
    details: InstanceDetails,
}

/// A child operand restricted to one (category, pattern-range) block.
#[derive(Clone, Copy)]
enum OperandBlock<'a, T: Real> {
    Partials(&'a [T]),
    States(&'a [u32]),
}

impl<T: Real> CpuInstance<T> {
    /// Create an instance. `details` should describe the chosen strategy;
    /// factories fill it in.
    pub fn new(
        config: InstanceConfig,
        threading: Threading,
        vectorized: bool,
        details: InstanceDetails,
    ) -> Result<Self> {
        Ok(Self {
            bufs: InstanceBuffers::new(config)?,
            threading,
            vectorized,
            min_patterns: MIN_PATTERNS_FOR_THREADING,
            details,
        })
    }

    /// Override the 512-pattern threading threshold (used by tests and by
    /// the benchmark harness's ablations).
    pub fn set_min_patterns_for_threading(&mut self, min: usize) {
        self.min_patterns = min;
    }

    fn use_vector_kernels(&self) -> bool {
        self.vectorized && self.bufs.config.state_count == 4
    }

    /// Dispatch one block through the right kernel.
    fn run_block(
        dest: &mut [T],
        c1: OperandBlock<'_, T>,
        c2: OperandBlock<'_, T>,
        m1: &[T],
        m2: &[T],
        s: usize,
        vectorized: bool,
    ) {
        let vec4 = vectorized && s == 4;
        match (c1, c2) {
            (OperandBlock::Partials(a), OperandBlock::Partials(b)) => {
                if vec4 {
                    vector::partials_partials_4(dest, a, b, m1, m2);
                } else {
                    kernels::partials_partials(dest, a, b, m1, m2, s);
                }
            }
            (OperandBlock::States(a), OperandBlock::Partials(b)) => {
                if vec4 {
                    vector::states_partials_4(dest, a, b, m1, m2);
                } else {
                    kernels::states_partials(dest, a, b, m1, m2, s);
                }
            }
            (OperandBlock::Partials(a), OperandBlock::States(b)) => {
                // Symmetric kernel with swapped matrices.
                if vec4 {
                    vector::states_partials_4(dest, b, a, m2, m1);
                } else {
                    kernels::states_partials(dest, b, a, m2, m1, s);
                }
            }
            (OperandBlock::States(a), OperandBlock::States(b)) => {
                if vec4 {
                    vector::states_states_4(dest, a, b, m1, m2);
                } else {
                    kernels::states_states(dest, a, b, m1, m2, s);
                }
            }
        }
    }

    /// Slice a child operand down to (category, pattern range).
    fn operand_block<'a>(
        child: &ChildOperand<'a, T>,
        cat: usize,
        p0: usize,
        p1: usize,
        n_pat: usize,
        s: usize,
    ) -> OperandBlock<'a, T> {
        match child {
            ChildOperand::Partials(p) => {
                OperandBlock::Partials(&p[(cat * n_pat + p0) * s..(cat * n_pat + p1) * s])
            }
            ChildOperand::States(st) => OperandBlock::States(&st[p0..p1]),
        }
    }

    /// Execute one operation over the pattern ranges in `ranges`, producing
    /// the task closures that fill disjoint chunks of `dest` (and of the
    /// scale buffer if the op rescales). Tasks are then run serially, on
    /// scoped threads, or on the pool by the caller.
    #[allow(clippy::type_complexity)]
    fn build_chunk_tasks<'env>(
        bufs: &'env InstanceBuffers<T>,
        dest: &'env mut [T],
        scale: Option<&'env mut [T]>,
        op: &Operation,
        ranges: &[(usize, usize)],
        vectorized: bool,
    ) -> Vec<Box<dyn FnOnce() + Send + 'env>> {
        let cfg = &bufs.config;
        let (s, n_pat, n_cat) = (cfg.state_count, cfg.pattern_count, cfg.category_count);
        let c1 = bufs.child_operand(op.child1);
        let c2 = bufs.child_operand(op.child2);
        let m1 = &bufs.matrices[op.child1_matrix];
        let m2 = &bufs.matrices[op.child2_matrix];

        // Split `dest` into per-(chunk, category) mutable blocks. Ranges are
        // contiguous from 0, so sequential split_at_mut works per category.
        let mut per_chunk_blocks: Vec<Vec<&'env mut [T]>> =
            (0..ranges.len()).map(|_| Vec::with_capacity(n_cat)).collect();
        for cat_block in dest.chunks_exact_mut(n_pat * s) {
            let mut rest = cat_block;
            for (ci, &(p0, p1)) in ranges.iter().enumerate() {
                let (chunk, r) = rest.split_at_mut((p1 - p0) * s);
                per_chunk_blocks[ci].push(chunk);
                rest = r;
            }
        }
        // Split the scale buffer the same way (it is per-pattern).
        let mut scale_chunks: Vec<Option<&'env mut [T]>> = match scale {
            Some(sc) => {
                let mut rest = sc;
                let mut out = Vec::with_capacity(ranges.len());
                for &(p0, p1) in ranges {
                    let (chunk, r) = rest.split_at_mut(p1 - p0);
                    out.push(Some(chunk));
                    rest = r;
                }
                out
            }
            None => ranges.iter().map(|_| None).collect(),
        };

        per_chunk_blocks
            .into_iter()
            .zip(ranges.to_vec())
            .zip(scale_chunks.drain(..))
            .map(|((mut blocks, (p0, p1)), scale_chunk)| {
                let task = move || {
                    for (cat, dblock) in blocks.iter_mut().enumerate() {
                        let c1b = Self::operand_block(&c1, cat, p0, p1, n_pat, s);
                        let c2b = Self::operand_block(&c2, cat, p0, p1, n_pat, s);
                        let m1c = &m1[cat * s * s..(cat + 1) * s * s];
                        let m2c = &m2[cat * s * s..(cat + 1) * s * s];
                        Self::run_block(dblock, c1b, c2b, m1c, m2c, s, vectorized);
                    }
                    if let Some(sc) = scale_chunk {
                        kernels::rescale_patterns(&mut blocks, sc, s);
                    }
                };
                Box::new(task) as Box<dyn FnOnce() + Send + 'env>
            })
            .collect()
    }

    /// Execute one operation serially over the whole pattern range.
    fn execute_op_serial(&mut self, op: &Operation) {
        let vectorized = self.use_vector_kernels();
        let mut dest = self.bufs.take_destination(op.destination);
        let mut scale = op
            .dest_scale_write
            .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
        {
            let ranges = [(0, self.bufs.config.pattern_count)];
            let tasks = Self::build_chunk_tasks(
                &self.bufs,
                &mut dest,
                scale.as_deref_mut(),
                op,
                &ranges,
                vectorized,
            );
            for t in tasks {
                t();
            }
        }
        if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
            self.bufs.scale_buffers[si] = sc;
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// Execute one operation with pattern-level parallelism.
    fn execute_op_chunked(&mut self, op: &Operation, use_pool: bool) {
        let vectorized = self.use_vector_kernels();
        let n_pat = self.bufs.config.pattern_count;
        let threads = self.threading.thread_count();
        let ranges = partition_range(n_pat, threads);
        let mut dest = self.bufs.take_destination(op.destination);
        let mut scale = op
            .dest_scale_write
            .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
        {
            let tasks = Self::build_chunk_tasks(
                &self.bufs,
                &mut dest,
                scale.as_deref_mut(),
                op,
                &ranges,
                vectorized,
            );
            if use_pool {
                let Threading::ThreadPool { pool } = &self.threading else {
                    unreachable!("use_pool implies pool strategy")
                };
                pool.run_batch(tasks);
            } else {
                // Thread-create: on-demand creation and joining (§VI-B).
                std::thread::scope(|scope| {
                    for t in tasks {
                        scope.spawn(t);
                    }
                });
            }
        }
        if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
            self.bufs.scale_buffers[si] = sc;
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// Futures model: operations that are independent in the tree run as
    /// concurrent async tasks; pattern ranges are NOT split (§VI-A).
    fn execute_ops_futures(&mut self, operations: &[Operation]) {
        for level in dependency_levels(operations) {
            self.execute_level_concurrent(&level);
        }
    }

    /// True if two operations in `level` share a destination or scale
    /// target — scheduling them concurrently would race, so batched paths
    /// fall back to sequential execution. Level plans built by
    /// `beagle_core::ops` never trip this; it guards hand-built plans.
    fn level_has_output_conflict(level: &[Operation]) -> bool {
        let mut dests = std::collections::HashSet::new();
        let mut scales = std::collections::HashSet::new();
        level.iter().any(|op| {
            !dests.insert(op.destination)
                || op.dest_scale_write.is_some_and(|s| !scales.insert(s))
        })
    }

    /// One level of mutually independent operations, each as its own
    /// full-pattern-range task on a scoped thread (the futures model).
    fn execute_level_concurrent(&mut self, level: &[Operation]) {
        let vectorized = self.use_vector_kernels();
        if level.len() == 1 {
            self.execute_op_serial(&level[0]);
            return;
        }
        if Self::level_has_output_conflict(level) {
            for op in level {
                self.execute_op_serial(op);
            }
            return;
        }
        // Take every destination (and scale target) out of the arena so
        // each task owns its output while sharing read access to inputs.
        let mut outputs: Vec<(Vec<T>, Option<Vec<T>>)> = level
            .iter()
            .map(|op| {
                let dest = self.bufs.take_destination(op.destination);
                let scale = op
                    .dest_scale_write
                    .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
                (dest, scale)
            })
            .collect();
        {
            let bufs = &self.bufs;
            std::thread::scope(|scope| {
                for (op, (dest, scale)) in level.iter().zip(outputs.iter_mut()) {
                    let full_range = [(0, bufs.config.pattern_count)];
                    scope.spawn(move || {
                        let tasks = Self::build_chunk_tasks(
                            bufs,
                            dest,
                            scale.as_deref_mut(),
                            op,
                            &full_range,
                            vectorized,
                        );
                        for t in tasks {
                            t();
                        }
                    });
                }
            });
        }
        for (op, (dest, scale)) in level.iter().zip(outputs) {
            if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
                self.bufs.scale_buffers[si] = sc;
            }
            self.bufs.restore_destination(op.destination, dest);
        }
    }

    /// One level of mutually independent operations as a single batched
    /// dispatch: the per-op pattern-range chunk tasks of the whole level are
    /// gathered and submitted in one `run_batch` (thread-pool) or one thread
    /// scope (thread-create). Chunk boundaries are identical to the eager
    /// per-op path, so results stay bit-for-bit equal.
    fn execute_level_chunked(&mut self, level: &[Operation], use_pool: bool) {
        if level.len() == 1 {
            self.execute_op_chunked(&level[0], use_pool);
            return;
        }
        if Self::level_has_output_conflict(level) {
            for op in level {
                self.execute_op_chunked(op, use_pool);
            }
            return;
        }
        let vectorized = self.use_vector_kernels();
        let n_pat = self.bufs.config.pattern_count;
        let ranges = partition_range(n_pat, self.threading.thread_count());
        let mut outputs: Vec<(Vec<T>, Option<Vec<T>>)> = level
            .iter()
            .map(|op| {
                let dest = self.bufs.take_destination(op.destination);
                let scale = op
                    .dest_scale_write
                    .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
                (dest, scale)
            })
            .collect();
        {
            let bufs = &self.bufs;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                Vec::with_capacity(level.len() * ranges.len());
            for (op, (dest, scale)) in level.iter().zip(outputs.iter_mut()) {
                tasks.extend(Self::build_chunk_tasks(
                    bufs,
                    dest,
                    scale.as_deref_mut(),
                    op,
                    &ranges,
                    vectorized,
                ));
            }
            if use_pool {
                let Threading::ThreadPool { pool } = &self.threading else {
                    unreachable!("use_pool implies pool strategy")
                };
                pool.run_batch(tasks);
            } else {
                std::thread::scope(|scope| {
                    for t in tasks {
                        scope.spawn(t);
                    }
                });
            }
        }
        for (op, (dest, scale)) in level.iter().zip(outputs) {
            if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
                self.bufs.scale_buffers[si] = sc;
            }
            self.bufs.restore_destination(op.destination, dest);
        }
    }

    /// Validate an operation list: indices in range, every child readable
    /// (tip, previously computed partials, or produced earlier in the list).
    fn validate_operations(&self, operations: &[Operation]) -> Result<()> {
        let mut produced = std::collections::HashSet::new();
        for op in operations {
            self.bufs.check_operation_indices(op)?;
            for child in [op.child1, op.child2] {
                let exists = self.bufs.partials[child].is_some()
                    || self.bufs.tip_states[child].is_some()
                    || produced.contains(&child);
                if !exists {
                    return Err(BeagleError::InvalidConfiguration(format!(
                        "operation reads buffer {child} before it was computed"
                    )));
                }
            }
            produced.insert(op.destination);
        }
        Ok(())
    }

    /// Root integration, optionally parallelized over patterns on the pool.
    fn root_log_likelihood(
        &mut self,
        root_buffer: usize,
        cw_index: usize,
        f_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        let cfg = self.bufs.config;
        if root_buffer >= cfg.partials_buffer_count {
            return Err(BeagleError::OutOfRange {
                what: "partials buffer (root)",
                index: root_buffer,
                limit: cfg.partials_buffer_count,
            });
        }
        if cw_index >= self.bufs.category_weights.len() {
            return Err(BeagleError::OutOfRange {
                what: "category weights buffer",
                index: cw_index,
                limit: self.bufs.category_weights.len(),
            });
        }
        if f_index >= self.bufs.frequencies.len() {
            return Err(BeagleError::OutOfRange {
                what: "frequencies buffer",
                index: f_index,
                limit: self.bufs.frequencies.len(),
            });
        }
        if let Some(cs) = cumulative_scale {
            if cs >= self.bufs.scale_buffers.len() {
                return Err(BeagleError::OutOfRange {
                    what: "scale buffer",
                    index: cs,
                    limit: self.bufs.scale_buffers.len(),
                });
            }
        }
        let root = self.bufs.partials[root_buffer]
            .take()
            .ok_or(BeagleError::InvalidConfiguration(format!(
                "root buffer {root_buffer} has never been computed"
            )))?;
        let mut site_lnl = std::mem::take(&mut self.bufs.site_log_likelihoods);

        let s = cfg.state_count;
        let n_pat = cfg.pattern_count;
        let freqs = &self.bufs.frequencies[f_index];
        let catw = &self.bufs.category_weights[cw_index];
        let pw = &self.bufs.pattern_weights;
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());

        let parallel_root = matches!(self.threading, Threading::ThreadPool { .. })
            && n_pat >= self.min_patterns;
        let total = if parallel_root {
            let Threading::ThreadPool { pool } = &self.threading else { unreachable!() };
            let ranges = partition_range(n_pat, pool.thread_count());
            let mut partial_sums = vec![0.0f64; ranges.len()];
            {
                // Split site_lnl by range; each task writes its chunk and sum.
                let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> =
                    Vec::with_capacity(ranges.len());
                let mut rest = site_lnl.as_mut_slice();
                for (&(p0, p1), sum_slot) in ranges.iter().zip(partial_sums.iter_mut()) {
                    let (chunk, r) = rest.split_at_mut(p1 - p0);
                    rest = r;
                    let root = &root;
                    tasks.push(Box::new(move || {
                        *sum_slot = kernels::integrate_root(
                            chunk, root, freqs, catw, pw, cscale, s, n_pat, p0,
                        );
                    }));
                }
                pool.run_batch(tasks);
            }
            partial_sums.iter().sum()
        } else {
            kernels::integrate_root(&mut site_lnl, &root, freqs, catw, pw, cscale, s, n_pat, 0)
        };

        self.bufs.site_log_likelihoods = site_lnl;
        self.bufs.partials[root_buffer] = Some(root);
        if total.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "root log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }
}

impl<T: Real> BeagleInstance for CpuInstance<T> {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.bufs.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.bufs.set_tip_states(tip, states)
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_tip_partials(tip, partials)
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_partials(buffer, partials)
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.bufs.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.bufs.set_pattern_weights(weights)
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.bufs.set_state_frequencies(index, frequencies)
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.bufs.set_category_rates(rates)
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.bufs.set_category_weights(index, weights)
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.bufs.set_eigen_decomposition(index, vectors, inverse_vectors, values)
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.bufs.update_transition_matrices(eigen_index, matrix_indices, branch_lengths)
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.bufs.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )
    }

    fn calculate_edge_derivatives(
        &mut self,
        parent_buffer: usize,
        child_buffer: usize,
        matrix_index: usize,
        d1_matrix: usize,
        d2_matrix: usize,
        category_weights_index: usize,
        frequencies_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<(f64, f64, f64)> {
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index, d1_matrix, d2_matrix],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent = self.bufs.partials[parent_buffer]
            .as_ref()
            .ok_or(BeagleError::InvalidConfiguration(format!(
                "parent buffer {parent_buffer} has never been computed"
            )))?;
        let child = if let Some(p) = &self.bufs.partials[child_buffer] {
            kernels::EdgeChild::Partials(p.as_slice())
        } else if let Some(st) = &self.bufs.tip_states[child_buffer] {
            kernels::EdgeChild::States(st.as_slice())
        } else {
            return Err(BeagleError::InvalidConfiguration(format!(
                "child buffer {child_buffer} has never been written"
            )));
        };
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
        let (lnl, d1, d2) = kernels::integrate_edge_derivatives(
            parent,
            child,
            &self.bufs.matrices[matrix_index],
            &self.bufs.matrices[d1_matrix],
            &self.bufs.matrices[d2_matrix],
            &self.bufs.frequencies[frequencies_index],
            &self.bufs.category_weights[category_weights_index],
            &self.bufs.pattern_weights,
            cscale,
            cfg.state_count,
            cfg.pattern_count,
        );
        if lnl.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "edge derivative log-likelihood is NaN".into(),
            ));
        }
        Ok((lnl, d1, d2))
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.bufs.set_transition_matrix(index, matrix)
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.bufs.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        // Validate everything up front; ops later in the list may read
        // destinations produced by earlier ops in the same call.
        self.validate_operations(operations)?;

        let n_pat = self.bufs.config.pattern_count;
        match self.threading {
            Threading::Serial => {
                for op in operations {
                    self.execute_op_serial(op);
                }
            }
            Threading::Futures => self.execute_ops_futures(operations),
            Threading::ThreadCreate { .. } | Threading::ThreadPool { .. } => {
                let use_pool = matches!(self.threading, Threading::ThreadPool { .. });
                for op in operations {
                    if n_pat < self.min_patterns {
                        self.execute_op_serial(op);
                    } else {
                        self.execute_op_chunked(op, use_pool);
                    }
                }
            }
        }
        Ok(())
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        let flat: Vec<Operation> = levels.iter().flatten().copied().collect();
        self.validate_operations(&flat)?;

        let n_pat = self.bufs.config.pattern_count;
        match self.threading {
            Threading::Serial => {
                for op in &flat {
                    self.execute_op_serial(op);
                }
            }
            // The futures model is already level-structured: run each given
            // level as one wave of scoped tasks.
            Threading::Futures => {
                for level in levels {
                    self.execute_level_concurrent(level);
                }
            }
            Threading::ThreadCreate { .. } | Threading::ThreadPool { .. } => {
                let use_pool = matches!(self.threading, Threading::ThreadPool { .. });
                if n_pat < self.min_patterns {
                    // Below the threading threshold batching buys nothing.
                    for op in &flat {
                        self.execute_op_serial(op);
                    }
                } else {
                    // One dispatch per dependency level instead of one per
                    // operation — the batching win the queue is after.
                    for level in levels {
                        self.execute_level_chunked(level, use_pool);
                    }
                }
            }
        }
        Ok(())
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        self.bufs.reset_scale_factors(cumulative)
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        self.bufs.accumulate_scale_factors(scale_indices, cumulative)
    }

    fn calculate_root_log_likelihoods(
        &mut self,
        root_buffer: usize,
        category_weights_index: usize,
        frequencies_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        self.root_log_likelihood(
            root_buffer,
            category_weights_index,
            frequencies_index,
            cumulative_scale,
        )
    }

    fn calculate_edge_log_likelihoods(
        &mut self,
        parent_buffer: usize,
        child_buffer: usize,
        matrix_index: usize,
        category_weights_index: usize,
        frequencies_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent = self.bufs.partials[parent_buffer]
            .as_ref()
            .ok_or(BeagleError::InvalidConfiguration(format!(
                "parent buffer {parent_buffer} has never been computed"
            )))?;
        let child = if let Some(p) = &self.bufs.partials[child_buffer] {
            EdgeChild::Partials(p.as_slice())
        } else if let Some(st) = &self.bufs.tip_states[child_buffer] {
            EdgeChild::States(st.as_slice())
        } else {
            return Err(BeagleError::InvalidConfiguration(format!(
                "child buffer {child_buffer} has never been written"
            )));
        };
        let mut site_lnl = vec![T::ZERO; cfg.pattern_count];
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
        let total = kernels::integrate_edge(
            &mut site_lnl,
            parent,
            child,
            &self.bufs.matrices[matrix_index],
            &self.bufs.frequencies[frequencies_index],
            &self.bufs.category_weights[category_weights_index],
            &self.bufs.pattern_weights,
            cscale,
            cfg.state_count,
            cfg.pattern_count,
            0,
        );
        self.bufs.site_log_likelihoods = site_lnl;
        if total.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "edge log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(widen_slice(&self.bufs.site_log_likelihoods))
    }
}
