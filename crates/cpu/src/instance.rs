//! The CPU instance: one type, four execution strategies.
//!
//! [`CpuInstance`] owns an [`InstanceBuffers`] arena and executes the
//! partial-likelihoods bottleneck with whichever [`Threading`] model it was
//! created with — the three iterations the paper describes in §VI (futures,
//! thread-create, thread-pool) plus the original serial model — combined
//! with the kernel table resolved once at creation by [`crate::simd`]
//! (scalar / portable / AVX2).
//!
//! The traversal hot path is allocation-free: work items are plain-data
//! [`ChunkTask`]/[`RootTask`] structs kept in a reusable [`Scratch`] arena,
//! the pattern partition is computed once at instance creation, and batches
//! go to the pool through [`ThreadPool::run_tasks`] (which allocates
//! nothing per dispatch). Buffers are padded to the SIMD lane width
//! ([`beagle_core::real::Real::SIMD_LANES`]) so the vector kernels run
//! remainder-free; the padding never escapes the public API.

use beagle_core::api::{BeagleInstance, BufferId, InstanceConfig, InstanceDetails, ScalingMode};
use beagle_core::buffers::{ChildOperand, InstanceBuffers};
use beagle_core::error::{BeagleError, Result};
use beagle_core::obs::{self, EventKind, KernelClass, Recorder};
use beagle_core::ops::{dependency_levels, Operation};
use beagle_core::real::{widen_slice, Real};

use crate::kernels::{self, EdgeChild};
use crate::pool::{partition_range, ThreadPool};
use crate::simd::{select_kind, DispatchKind, DispatchReal, KernelDispatch};

/// Patterns below this threshold run serially even under a threading model —
/// §VI-B: "to prevent small problem sizes from being slower than the previous
/// serial implementation, we set a minimum sequence length of 512 patterns
/// for threading to be used".
pub const MIN_PATTERNS_FOR_THREADING: usize = 512;

/// Execution strategy for the likelihood kernels.
pub enum Threading {
    /// Original single-threaded model.
    Serial,
    /// One asynchronous task per *tree operation*; operations that are
    /// independent in the topology run concurrently (§VI-A).
    Futures,
    /// Threads created and joined per `update_partials` call, splitting the
    /// pattern range evenly (§VI-B).
    ThreadCreate {
        /// Number of threads to create per call.
        threads: usize,
    },
    /// Persistent worker pool; also parallelizes root integration (§VI-C).
    /// The pool is shared (`Arc`) so many instances — e.g. one per MCMC
    /// chain — reuse the same workers instead of oversubscribing the host.
    ThreadPool {
        /// The shared pool.
        pool: std::sync::Arc<ThreadPool>,
    },
}

impl Threading {
    fn thread_count(&self) -> usize {
        match self {
            Threading::Serial | Threading::Futures => 1,
            Threading::ThreadCreate { threads } => *threads,
            Threading::ThreadPool { pool } => pool.thread_count(),
        }
    }
}

/// Raw view of a child operand inside a task (borrow-erased).
#[derive(Clone, Copy)]
enum OperandPtr<T> {
    Partials(*const T),
    States(*const u32),
}

/// One (pattern-range × all categories) unit of an `update_partials`
/// operation as plain data: raw pointers into the instance arena plus the
/// geometry needed to slice them. Tasks over disjoint pattern ranges touch
/// disjoint parts of `dest`/`scale`, so a batch of them is data-race free.
struct ChunkTask<T: Real> {
    dest: *mut T,
    /// Start of this chunk's slice of the scale buffer, or null.
    scale: *mut T,
    c1: OperandPtr<T>,
    c2: OperandPtr<T>,
    m1: *const T,
    m2: *const T,
    s: usize,
    sp: usize,
    n_pat: usize,
    n_cat: usize,
    p0: usize,
    p1: usize,
    dispatch: &'static KernelDispatch<T>,
}

// SAFETY: the pointers reference buffers that outlive the batch (the
// executing call blocks until every task finished) and distinct tasks write
// disjoint ranges.
unsafe impl<T: Real> Send for ChunkTask<T> {}

// SAFETY: a shared `&ChunkTask` exposes no operations at all (every field is
// private to this module and only `run_chunk(&mut ...)` dereferences the
// pointers, under the exclusive `&mut self` of the executing call), so
// sharing references across threads cannot race. Required so the `Scratch`
// arena doesn't strip `Sync` from `CpuInstance`.
unsafe impl<T: Real> Sync for ChunkTask<T> {}

/// Execute one chunk task: all category blocks of its pattern range, then
/// (if requested) the rescaling passes over the same range.
fn run_chunk<T: DispatchReal>(t: &mut ChunkTask<T>) {
    let (s, sp, n) = (t.s, t.sp, t.p1 - t.p0);
    let d = t.dispatch;
    for cat in 0..t.n_cat {
        let off = (cat * t.n_pat + t.p0) * sp;
        // SAFETY: `off..off + n*sp` lies inside the destination buffer and
        // no other task of the batch overlaps it (disjoint pattern ranges).
        let dest = unsafe { std::slice::from_raw_parts_mut(t.dest.add(off), n * sp) };
        let m1 = unsafe { std::slice::from_raw_parts(t.m1.add(cat * s * sp), s * sp) };
        let m2 = unsafe { std::slice::from_raw_parts(t.m2.add(cat * s * sp), s * sp) };
        match (t.c1, t.c2) {
            (OperandPtr::Partials(a), OperandPtr::Partials(b)) => {
                let a = unsafe { std::slice::from_raw_parts(a.add(off), n * sp) };
                let b = unsafe { std::slice::from_raw_parts(b.add(off), n * sp) };
                (d.partials_partials)(dest, a, b, m1, m2, s, sp);
            }
            (OperandPtr::States(a), OperandPtr::Partials(b)) => {
                let a = unsafe { std::slice::from_raw_parts(a.add(t.p0), n) };
                let b = unsafe { std::slice::from_raw_parts(b.add(off), n * sp) };
                (d.states_partials)(dest, a, b, m1, m2, s, sp);
            }
            (OperandPtr::Partials(a), OperandPtr::States(b)) => {
                // Symmetric kernel with swapped matrices.
                let a = unsafe { std::slice::from_raw_parts(a.add(off), n * sp) };
                let b = unsafe { std::slice::from_raw_parts(b.add(t.p0), n) };
                (d.states_partials)(dest, b, a, m2, m1, s, sp);
            }
            (OperandPtr::States(a), OperandPtr::States(b)) => {
                let a = unsafe { std::slice::from_raw_parts(a.add(t.p0), n) };
                let b = unsafe { std::slice::from_raw_parts(b.add(t.p0), n) };
                (d.states_states)(dest, a, b, m1, m2, s, sp);
            }
        }
    }
    if !t.scale.is_null() {
        // SAFETY: this chunk's scale slice, disjoint from other tasks'.
        let scale = unsafe { std::slice::from_raw_parts_mut(t.scale, n) };
        scale.iter_mut().for_each(|x| *x = T::ZERO);
        for cat in 0..t.n_cat {
            let off = (cat * t.n_pat + t.p0) * sp;
            let block = unsafe { std::slice::from_raw_parts(t.dest.add(off), n * sp) };
            (t.dispatch.rescale_max)(block, scale, sp);
        }
        for cat in 0..t.n_cat {
            let off = (cat * t.n_pat + t.p0) * sp;
            let block = unsafe { std::slice::from_raw_parts_mut(t.dest.add(off), n * sp) };
            (t.dispatch.rescale_apply)(block, scale, sp);
        }
        kernels::rescale_finish(scale);
    }
}

/// One pattern-range unit of root integration as plain data.
struct RootTask<T: Real> {
    site: *mut T,
    len: usize,
    root: *const T,
    root_len: usize,
    freqs: *const T,
    freqs_len: usize,
    catw: *const T,
    catw_len: usize,
    pw: *const T,
    cscale: *const T,
    s: usize,
    sp: usize,
    n_pat: usize,
    p0: usize,
    dispatch: &'static KernelDispatch<T>,
    sum: f64,
}

// SAFETY: same protocol as ChunkTask — buffers outlive the blocking batch,
// ranges are disjoint.
unsafe impl<T: Real> Send for RootTask<T> {}

// SAFETY: as for `ChunkTask` — `&RootTask` exposes nothing; pointer access
// happens only in `run_root(&mut ...)` within an exclusive call.
unsafe impl<T: Real> Sync for RootTask<T> {}

fn run_root<T: DispatchReal>(t: &mut RootTask<T>) {
    // SAFETY: pointers/lengths were taken from live slices that outlive the
    // batch; `site` is this task's disjoint chunk.
    let site = unsafe { std::slice::from_raw_parts_mut(t.site, t.len) };
    let root = unsafe { std::slice::from_raw_parts(t.root, t.root_len) };
    let freqs = unsafe { std::slice::from_raw_parts(t.freqs, t.freqs_len) };
    let catw = unsafe { std::slice::from_raw_parts(t.catw, t.catw_len) };
    let pw = unsafe { std::slice::from_raw_parts(t.pw, t.n_pat) };
    let cscale = if t.cscale.is_null() {
        None
    } else {
        Some(unsafe { std::slice::from_raw_parts(t.cscale, t.n_pat) })
    };
    t.sum = (t.dispatch.integrate_root)(
        site, root, freqs, catw, pw, cscale, t.s, t.sp, t.n_pat, t.p0,
    );
}

/// Reusable per-instance work arenas: dispatching a traversal allocates
/// nothing after the first call at each size.
struct Scratch<T: Real> {
    chunk_tasks: Vec<ChunkTask<T>>,
    root_tasks: Vec<RootTask<T>>,
}

impl<T: Real> Default for Scratch<T> {
    fn default() -> Self {
        Self {
            chunk_tasks: Vec::new(),
            root_tasks: Vec::new(),
        }
    }
}

/// A CPU-resident BEAGLE instance with precision `T`.
pub struct CpuInstance<T: DispatchReal> {
    bufs: InstanceBuffers<T>,
    threading: Threading,
    /// Kernel table resolved at creation (scalar / portable / avx2).
    dispatch: &'static KernelDispatch<T>,
    /// Minimum pattern count before pattern-level threading engages.
    min_patterns: usize,
    /// Precomputed (start, end) pattern ranges, one per thread.
    partition: Vec<(usize, usize)>,
    scratch: Scratch<T>,
    details: InstanceDetails,
    /// Kernel timers/counters + event journal; disabled unless the instance
    /// was created with [`beagle_core::Flags::INSTANCE_STATS`].
    recorder: Recorder,
}

impl<T: DispatchReal> CpuInstance<T> {
    /// Create an instance. `details` should describe the chosen strategy;
    /// factories fill it in. The kernel path resolves from `vectorized`,
    /// host capability, and the `BEAGLE_FORCE_SCALAR` override.
    pub fn new(
        config: InstanceConfig,
        threading: Threading,
        vectorized: bool,
        details: InstanceDetails,
    ) -> Result<Self> {
        Self::with_dispatch_kind(config, threading, select_kind(vectorized), details)
    }

    /// Create an instance with an explicit kernel table — used by parity
    /// tests and benchmarks to pin the dispatch path regardless of host
    /// detection or environment.
    pub fn with_dispatch_kind(
        config: InstanceConfig,
        threading: Threading,
        kind: DispatchKind,
        details: InstanceDetails,
    ) -> Result<Self> {
        let partition = partition_range(config.pattern_count, threading.thread_count());
        Ok(Self {
            bufs: InstanceBuffers::new_padded(config, T::SIMD_LANES)?,
            threading,
            dispatch: T::dispatch(kind),
            min_patterns: MIN_PATTERNS_FOR_THREADING,
            partition,
            scratch: Scratch::default(),
            details,
            recorder: Recorder::disabled(),
        })
    }

    /// Turn on kernel statistics and the event journal for this instance.
    /// Called by factories when the client asked for
    /// [`beagle_core::Flags::INSTANCE_STATS`].
    pub fn enable_statistics(&mut self) {
        self.recorder = Recorder::new(true);
        let path = self.dispatch.path;
        let threading = match &self.threading {
            Threading::Serial => "serial",
            Threading::Futures => "futures",
            Threading::ThreadCreate { .. } => "thread-create",
            Threading::ThreadPool { .. } => "thread-pool",
        };
        let threads = self.threading.thread_count();
        self.recorder.event(EventKind::DispatchSelected, || {
            format!("kernel_path={path} threading={threading} threads={threads}")
        });
    }

    /// True when buffer `b` holds compact tip states (and no expanded
    /// partials) — the operand classification the kernel table dispatches
    /// on, reused to attribute timing per kernel class.
    fn is_state_operand(&self, b: usize) -> bool {
        self.bufs.partials[b].is_none() && self.bufs.tip_states[b].is_some()
    }

    /// Attribute one `update_partials`-family call's wall time across the
    /// partials kernel classes, split by each class's share of the
    /// operation list (classified after execution, when every intermediate
    /// child has materialized partials).
    fn record_partials_call(&mut self, operations: &[Operation], wall: std::time::Duration) {
        let mut counts = [0u64; 3];
        for op in operations {
            let idx = match (
                self.is_state_operand(op.child1),
                self.is_state_operand(op.child2),
            ) {
                (false, false) => 0,
                (true, true) => 2,
                _ => 1,
            };
            counts[idx] += 1;
        }
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return;
        }
        // Rough traffic model: destination write + two operand reads per op.
        let cfg = &self.bufs.config;
        let padded = cfg.category_count * cfg.pattern_count * self.bufs.state_stride;
        let bytes_per_op = (3 * padded * std::mem::size_of::<T>()) as u64;
        let classes = [
            KernelClass::PartialsPP,
            KernelClass::PartialsSP,
            KernelClass::PartialsSS,
        ];
        for (i, class) in classes.into_iter().enumerate() {
            if counts[i] == 0 {
                continue;
            }
            self.recorder
                .tally(class, counts[i], counts[i] * bytes_per_op);
            self.recorder
                .add_wall(class, wall.mul_f64(counts[i] as f64 / total as f64));
        }
    }

    /// Override the 512-pattern threading threshold (used by tests and by
    /// the benchmark harness's ablations).
    pub fn set_min_patterns_for_threading(&mut self, min: usize) {
        self.min_patterns = min;
    }

    /// Name of the kernel path this instance resolved to
    /// ("scalar" / "portable" / "avx2").
    pub fn dispatch_path(&self) -> &'static str {
        self.dispatch.path
    }

    /// Append this operation's chunk tasks (one per range) to `tasks`.
    /// The caller must run and clear `tasks` before `dest`/`scale`/`bufs`
    /// move or mutate.
    #[allow(clippy::too_many_arguments)]
    fn push_chunk_tasks(
        tasks: &mut Vec<ChunkTask<T>>,
        bufs: &InstanceBuffers<T>,
        dest: &mut [T],
        scale: Option<&mut Vec<T>>,
        op: &Operation,
        ranges: &[(usize, usize)],
        dispatch: &'static KernelDispatch<T>,
    ) {
        let cfg = &bufs.config;
        let (s, sp) = (cfg.state_count, bufs.state_stride);
        let operand = |child: usize| match bufs.child_operand(child) {
            ChildOperand::Partials(p) => OperandPtr::Partials(p.as_ptr()),
            ChildOperand::States(st) => OperandPtr::States(st.as_ptr()),
        };
        let c1 = operand(op.child1);
        let c2 = operand(op.child2);
        let scale_base = scale.map_or(std::ptr::null_mut(), |sc| sc.as_mut_ptr());
        for &(p0, p1) in ranges {
            tasks.push(ChunkTask {
                dest: dest.as_mut_ptr(),
                scale: if scale_base.is_null() {
                    std::ptr::null_mut()
                } else {
                    // SAFETY: p0 < pattern_count == scale buffer length.
                    unsafe { scale_base.add(p0) }
                },
                c1,
                c2,
                m1: bufs.matrices[op.child1_matrix].as_ptr(),
                m2: bufs.matrices[op.child2_matrix].as_ptr(),
                s,
                sp,
                n_pat: cfg.pattern_count,
                n_cat: cfg.category_count,
                p0,
                p1,
                dispatch,
            });
        }
    }

    /// Execute one operation serially over the whole pattern range.
    fn execute_op_serial(&mut self, op: &Operation) {
        let mut dest = self.bufs.take_destination(op.destination);
        let mut scale = op
            .dest_scale_write
            .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
        let tasks = &mut self.scratch.chunk_tasks;
        tasks.clear();
        Self::push_chunk_tasks(
            tasks,
            &self.bufs,
            &mut dest,
            scale.as_mut(),
            op,
            &[(0, self.bufs.config.pattern_count)],
            self.dispatch,
        );
        for t in tasks.iter_mut() {
            run_chunk(t);
        }
        tasks.clear();
        if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
            self.bufs.scale_buffers[si] = sc;
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// Execute one operation with pattern-level parallelism.
    fn execute_op_chunked(&mut self, op: &Operation, use_pool: bool) {
        let mut dest = self.bufs.take_destination(op.destination);
        let mut scale = op
            .dest_scale_write
            .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
        let tasks = &mut self.scratch.chunk_tasks;
        tasks.clear();
        Self::push_chunk_tasks(
            tasks,
            &self.bufs,
            &mut dest,
            scale.as_mut(),
            op,
            &self.partition,
            self.dispatch,
        );
        let n_tasks = tasks.len() as u64;
        if use_pool {
            let Threading::ThreadPool { pool } = &self.threading else {
                unreachable!("use_pool implies pool strategy")
            };
            pool.run_tasks(tasks, run_chunk::<T>);
        } else {
            // Thread-create: on-demand creation and joining (§VI-B).
            std::thread::scope(|scope| {
                for t in tasks.iter_mut() {
                    scope.spawn(move || run_chunk(t));
                }
            });
        }
        tasks.clear();
        if use_pool {
            self.recorder.tally(KernelClass::PoolDispatch, n_tasks, 0);
        }
        if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
            self.bufs.scale_buffers[si] = sc;
        }
        self.bufs.restore_destination(op.destination, dest);
    }

    /// Futures model: operations that are independent in the tree run as
    /// concurrent async tasks; pattern ranges are NOT split (§VI-A).
    fn execute_ops_futures(&mut self, operations: &[Operation]) {
        for level in dependency_levels(operations) {
            self.execute_level_concurrent(&level);
        }
    }

    /// True if two operations in `level` share a destination or scale
    /// target — scheduling them concurrently would race, so batched paths
    /// fall back to sequential execution. Level plans built by
    /// `beagle_core::ops` never trip this; it guards hand-built plans.
    fn level_has_output_conflict(level: &[Operation]) -> bool {
        let mut dests = std::collections::HashSet::new();
        let mut scales = std::collections::HashSet::new();
        level.iter().any(|op| {
            !dests.insert(op.destination) || op.dest_scale_write.is_some_and(|s| !scales.insert(s))
        })
    }

    /// One level of mutually independent operations, each as its own
    /// full-pattern-range task on a scoped thread (the futures model).
    fn execute_level_concurrent(&mut self, level: &[Operation]) {
        if level.len() == 1 {
            self.execute_op_serial(&level[0]);
            return;
        }
        if Self::level_has_output_conflict(level) {
            for op in level {
                self.execute_op_serial(op);
            }
            return;
        }
        // Take every destination (and scale target) out of the arena so
        // each task owns its output while sharing read access to inputs.
        let mut outputs: Vec<(Vec<T>, Option<Vec<T>>)> = level
            .iter()
            .map(|op| {
                let dest = self.bufs.take_destination(op.destination);
                let scale = op
                    .dest_scale_write
                    .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
                (dest, scale)
            })
            .collect();
        let full_range = [(0, self.bufs.config.pattern_count)];
        let tasks = &mut self.scratch.chunk_tasks;
        tasks.clear();
        for (op, (dest, scale)) in level.iter().zip(outputs.iter_mut()) {
            Self::push_chunk_tasks(
                tasks,
                &self.bufs,
                dest,
                scale.as_mut(),
                op,
                &full_range,
                self.dispatch,
            );
        }
        std::thread::scope(|scope| {
            for t in tasks.iter_mut() {
                scope.spawn(move || run_chunk(t));
            }
        });
        tasks.clear();
        for (op, (dest, scale)) in level.iter().zip(outputs) {
            if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
                self.bufs.scale_buffers[si] = sc;
            }
            self.bufs.restore_destination(op.destination, dest);
        }
    }

    /// One level of mutually independent operations as a single batched
    /// dispatch: the per-op pattern-range chunk tasks of the whole level are
    /// gathered and submitted in one pool batch (thread-pool) or one thread
    /// scope (thread-create). Chunk boundaries are identical to the eager
    /// per-op path, so results stay bit-for-bit equal.
    fn execute_level_chunked(&mut self, level: &[Operation], use_pool: bool) {
        if level.len() == 1 {
            self.execute_op_chunked(&level[0], use_pool);
            return;
        }
        if Self::level_has_output_conflict(level) {
            for op in level {
                self.execute_op_chunked(op, use_pool);
            }
            return;
        }
        let mut outputs: Vec<(Vec<T>, Option<Vec<T>>)> = level
            .iter()
            .map(|op| {
                let dest = self.bufs.take_destination(op.destination);
                let scale = op
                    .dest_scale_write
                    .map(|si| std::mem::take(&mut self.bufs.scale_buffers[si]));
                (dest, scale)
            })
            .collect();
        let tasks = &mut self.scratch.chunk_tasks;
        tasks.clear();
        for (op, (dest, scale)) in level.iter().zip(outputs.iter_mut()) {
            Self::push_chunk_tasks(
                tasks,
                &self.bufs,
                dest,
                scale.as_mut(),
                op,
                &self.partition,
                self.dispatch,
            );
        }
        let n_tasks = tasks.len() as u64;
        if use_pool {
            let Threading::ThreadPool { pool } = &self.threading else {
                unreachable!("use_pool implies pool strategy")
            };
            pool.run_tasks(tasks, run_chunk::<T>);
        } else {
            std::thread::scope(|scope| {
                for t in tasks.iter_mut() {
                    scope.spawn(move || run_chunk(t));
                }
            });
        }
        tasks.clear();
        if use_pool {
            self.recorder.tally(KernelClass::PoolDispatch, n_tasks, 0);
        }
        for (op, (dest, scale)) in level.iter().zip(outputs) {
            if let (Some(si), Some(sc)) = (op.dest_scale_write, scale) {
                self.bufs.scale_buffers[si] = sc;
            }
            self.bufs.restore_destination(op.destination, dest);
        }
    }

    /// Validate an operation list: indices in range, every child readable
    /// (tip, previously computed partials, or produced earlier in the list).
    fn validate_operations(&self, operations: &[Operation]) -> Result<()> {
        let mut produced = std::collections::HashSet::new();
        for op in operations {
            self.bufs.check_operation_indices(op)?;
            for child in [op.child1, op.child2] {
                let exists = self.bufs.partials[child].is_some()
                    || self.bufs.tip_states[child].is_some()
                    || produced.contains(&child);
                if !exists {
                    return Err(BeagleError::InvalidConfiguration(format!(
                        "operation reads buffer {child} before it was computed"
                    )));
                }
            }
            produced.insert(op.destination);
        }
        Ok(())
    }

    /// Root integration, optionally parallelized over patterns on the pool.
    fn root_log_likelihood(
        &mut self,
        root_buffer: usize,
        cw_index: usize,
        f_index: usize,
        cumulative_scale: Option<usize>,
    ) -> Result<f64> {
        let cfg = self.bufs.config;
        if root_buffer >= cfg.partials_buffer_count {
            return Err(BeagleError::OutOfRange {
                what: "partials buffer (root)",
                index: root_buffer,
                limit: cfg.partials_buffer_count,
            });
        }
        if cw_index >= self.bufs.category_weights.len() {
            return Err(BeagleError::OutOfRange {
                what: "category weights buffer",
                index: cw_index,
                limit: self.bufs.category_weights.len(),
            });
        }
        if f_index >= self.bufs.frequencies.len() {
            return Err(BeagleError::OutOfRange {
                what: "frequencies buffer",
                index: f_index,
                limit: self.bufs.frequencies.len(),
            });
        }
        if let Some(cs) = cumulative_scale {
            if cs >= self.bufs.scale_buffers.len() {
                return Err(BeagleError::OutOfRange {
                    what: "scale buffer",
                    index: cs,
                    limit: self.bufs.scale_buffers.len(),
                });
            }
        }
        let root =
            self.bufs.partials[root_buffer]
                .take()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "root buffer {root_buffer} has never been computed"
                )))?;
        let mut site_lnl = std::mem::take(&mut self.bufs.site_log_likelihoods);

        let s = cfg.state_count;
        let sp = self.bufs.state_stride;
        let n_pat = cfg.pattern_count;
        let freqs = &self.bufs.frequencies[f_index];
        let catw = &self.bufs.category_weights[cw_index];
        let pw = &self.bufs.pattern_weights;
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());

        let parallel_root =
            matches!(self.threading, Threading::ThreadPool { .. }) && n_pat >= self.min_patterns;
        let total = if parallel_root {
            let Threading::ThreadPool { pool } = &self.threading else {
                unreachable!()
            };
            let tasks = &mut self.scratch.root_tasks;
            tasks.clear();
            let site_base = site_lnl.as_mut_ptr();
            for &(p0, p1) in &self.partition {
                tasks.push(RootTask {
                    // SAFETY: p0 < n_pat == site_lnl length.
                    site: unsafe { site_base.add(p0) },
                    len: p1 - p0,
                    root: root.as_ptr(),
                    root_len: root.len(),
                    freqs: freqs.as_ptr(),
                    freqs_len: freqs.len(),
                    catw: catw.as_ptr(),
                    catw_len: catw.len(),
                    pw: pw.as_ptr(),
                    cscale: cscale.map_or(std::ptr::null(), |cs| cs.as_ptr()),
                    s,
                    sp,
                    n_pat,
                    p0,
                    dispatch: self.dispatch,
                    sum: 0.0,
                });
            }
            pool.run_tasks(tasks, run_root::<T>);
            let total = tasks.iter().map(|t| t.sum).sum();
            tasks.clear();
            total
        } else {
            (self.dispatch.integrate_root)(
                &mut site_lnl,
                &root,
                freqs,
                catw,
                pw,
                cscale,
                s,
                sp,
                n_pat,
                0,
            )
        };

        if parallel_root {
            self.recorder
                .tally(KernelClass::PoolDispatch, self.partition.len() as u64, 0);
        }
        self.bufs.site_log_likelihoods = site_lnl;
        self.bufs.partials[root_buffer] = Some(root);
        if total.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "root log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }
}

impl<T: DispatchReal> BeagleInstance for CpuInstance<T> {
    fn details(&self) -> &InstanceDetails {
        &self.details
    }

    fn config(&self) -> &InstanceConfig {
        &self.bufs.config
    }

    fn set_tip_states(&mut self, tip: usize, states: &[u32]) -> Result<()> {
        self.bufs.set_tip_states(tip, states)
    }

    fn set_tip_partials(&mut self, tip: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_tip_partials(tip, partials)
    }

    fn set_partials(&mut self, buffer: usize, partials: &[f64]) -> Result<()> {
        self.bufs.set_partials(buffer, partials)
    }

    fn get_partials(&self, buffer: usize) -> Result<Vec<f64>> {
        self.bufs.get_partials(buffer)
    }

    fn set_pattern_weights(&mut self, weights: &[f64]) -> Result<()> {
        self.bufs.set_pattern_weights(weights)
    }

    fn set_state_frequencies(&mut self, index: usize, frequencies: &[f64]) -> Result<()> {
        self.bufs.set_state_frequencies(index, frequencies)
    }

    fn set_category_rates(&mut self, rates: &[f64]) -> Result<()> {
        self.bufs.set_category_rates(rates)
    }

    fn set_category_weights(&mut self, index: usize, weights: &[f64]) -> Result<()> {
        self.bufs.set_category_weights(index, weights)
    }

    fn set_eigen_decomposition(
        &mut self,
        index: usize,
        vectors: &[f64],
        inverse_vectors: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.bufs
            .set_eigen_decomposition(index, vectors, inverse_vectors, values)
    }

    fn update_transition_matrices(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        let sw = self.recorder.start();
        let r = self
            .bufs
            .update_transition_matrices(eigen_index, matrix_indices, branch_lengths);
        let bytes = (matrix_indices.len()
            * self.bufs.config.category_count
            * self.bufs.config.state_count
            * self.bufs.state_stride
            * std::mem::size_of::<T>()) as u64;
        self.recorder.finish(
            sw,
            KernelClass::TransitionMatrices,
            matrix_indices.len() as u64,
            bytes,
        );
        r
    }

    fn update_transition_derivatives(
        &mut self,
        eigen_index: usize,
        matrix_indices: &[usize],
        d1_indices: &[usize],
        d2_indices: &[usize],
        branch_lengths: &[f64],
    ) -> Result<()> {
        self.bufs.update_transition_derivatives(
            eigen_index,
            matrix_indices,
            d1_indices,
            d2_indices,
            branch_lengths,
        )
    }

    fn integrate_edge_derivatives(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        d1: BufferId,
        d2: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<(f64, f64, f64)> {
        let sw = self.recorder.start();
        let parent_buffer = parent.index();
        let child_buffer = child.index();
        let matrix_index = matrix.index();
        let d1_matrix = d1.index();
        let d2_matrix = d2.index();
        let category_weights_index = category_weights.index();
        let frequencies_index = frequencies.index();
        let cumulative_scale = scaling.index();
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index, d1_matrix, d2_matrix],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent =
            self.bufs.partials[parent_buffer]
                .as_ref()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "parent buffer {parent_buffer} has never been computed"
                )))?;
        let child = if let Some(p) = &self.bufs.partials[child_buffer] {
            kernels::EdgeChild::Partials(p.as_slice())
        } else if let Some(st) = &self.bufs.tip_states[child_buffer] {
            kernels::EdgeChild::States(st.as_slice())
        } else {
            return Err(BeagleError::InvalidConfiguration(format!(
                "child buffer {child_buffer} has never been written"
            )));
        };
        let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
        let (lnl, d1, d2) = kernels::integrate_edge_derivatives(
            parent,
            child,
            &self.bufs.matrices[matrix_index],
            &self.bufs.matrices[d1_matrix],
            &self.bufs.matrices[d2_matrix],
            &self.bufs.frequencies[frequencies_index],
            &self.bufs.category_weights[category_weights_index],
            &self.bufs.pattern_weights,
            cscale,
            cfg.state_count,
            self.bufs.state_stride,
            cfg.pattern_count,
        );
        self.recorder
            .finish(sw, KernelClass::EdgeIntegrate, cfg.pattern_count as u64, 0);
        if lnl.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "edge derivative log-likelihood is NaN".into(),
            ));
        }
        Ok((lnl, d1, d2))
    }

    fn set_transition_matrix(&mut self, index: usize, matrix: &[f64]) -> Result<()> {
        self.bufs.set_transition_matrix(index, matrix)
    }

    fn get_transition_matrix(&self, index: usize) -> Result<Vec<f64>> {
        self.bufs.get_transition_matrix(index)
    }

    fn update_partials(&mut self, operations: &[Operation]) -> Result<()> {
        // Validate everything up front; ops later in the list may read
        // destinations produced by earlier ops in the same call.
        self.validate_operations(operations)?;

        let t0 = self.recorder.is_enabled().then(std::time::Instant::now);
        self.recorder.event(EventKind::OperationBegin, || {
            format!("update_partials ops={}", operations.len())
        });
        let n_pat = self.bufs.config.pattern_count;
        match self.threading {
            Threading::Serial => {
                for op in operations {
                    self.execute_op_serial(op);
                }
            }
            Threading::Futures => self.execute_ops_futures(operations),
            Threading::ThreadCreate { .. } | Threading::ThreadPool { .. } => {
                let use_pool = matches!(self.threading, Threading::ThreadPool { .. });
                for op in operations {
                    if n_pat < self.min_patterns {
                        self.execute_op_serial(op);
                    } else {
                        self.execute_op_chunked(op, use_pool);
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            self.record_partials_call(operations, t0.elapsed());
            self.recorder.event(EventKind::OperationEnd, || {
                format!("update_partials ops={}", operations.len())
            });
        }
        Ok(())
    }

    fn update_partials_by_levels(&mut self, levels: &[Vec<Operation>]) -> Result<()> {
        let flat: Vec<Operation> = levels.iter().flatten().copied().collect();
        self.validate_operations(&flat)?;

        let t0 = self.recorder.is_enabled().then(std::time::Instant::now);
        self.recorder.event(EventKind::OperationBegin, || {
            format!(
                "update_partials_by_levels ops={} levels={}",
                flat.len(),
                levels.len()
            )
        });
        let n_pat = self.bufs.config.pattern_count;
        match self.threading {
            Threading::Serial => {
                for op in &flat {
                    self.execute_op_serial(op);
                }
            }
            // The futures model is already level-structured: run each given
            // level as one wave of scoped tasks.
            Threading::Futures => {
                for level in levels {
                    self.execute_level_concurrent(level);
                }
            }
            Threading::ThreadCreate { .. } | Threading::ThreadPool { .. } => {
                let use_pool = matches!(self.threading, Threading::ThreadPool { .. });
                if n_pat < self.min_patterns {
                    // Below the threading threshold batching buys nothing.
                    for op in &flat {
                        self.execute_op_serial(op);
                    }
                } else {
                    // One dispatch per dependency level instead of one per
                    // operation — the batching win the queue is after.
                    for level in levels {
                        self.execute_level_chunked(level, use_pool);
                    }
                }
            }
        }
        if let Some(t0) = t0 {
            self.record_partials_call(&flat, t0.elapsed());
            self.recorder.event(EventKind::OperationEnd, || {
                format!("update_partials_by_levels ops={}", flat.len())
            });
        }
        Ok(())
    }

    fn reset_scale_factors(&mut self, cumulative: usize) -> Result<()> {
        let sw = self.recorder.start();
        let r = self.bufs.reset_scale_factors(cumulative);
        self.recorder.finish(sw, KernelClass::Rescale, 1, 0);
        r
    }

    fn accumulate_scale_factors(
        &mut self,
        scale_indices: &[usize],
        cumulative: usize,
    ) -> Result<()> {
        let sw = self.recorder.start();
        let r = self
            .bufs
            .accumulate_scale_factors(scale_indices, cumulative);
        self.recorder
            .finish(sw, KernelClass::Rescale, scale_indices.len() as u64, 0);
        r
    }

    fn integrate_root(
        &mut self,
        root: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let sw = self.recorder.start();
        let r = self.root_log_likelihood(
            root.index(),
            category_weights.index(),
            frequencies.index(),
            scaling.index(),
        );
        let patterns = self.bufs.config.pattern_count as u64;
        self.recorder
            .finish(sw, KernelClass::RootIntegrate, patterns, 0);
        r
    }

    fn integrate_edge(
        &mut self,
        parent: BufferId,
        child: BufferId,
        matrix: BufferId,
        category_weights: BufferId,
        frequencies: BufferId,
        scaling: ScalingMode,
    ) -> Result<f64> {
        let sw = self.recorder.start();
        let parent_buffer = parent.index();
        let child_buffer = child.index();
        let matrix_index = matrix.index();
        let category_weights_index = category_weights.index();
        let frequencies_index = frequencies.index();
        let cumulative_scale = scaling.index();
        let cfg = self.bufs.config;
        self.bufs.check_integration_indices(
            &[parent_buffer, child_buffer],
            &[matrix_index],
            frequencies_index,
            category_weights_index,
            cumulative_scale,
        )?;
        let parent =
            self.bufs.partials[parent_buffer]
                .take()
                .ok_or(BeagleError::InvalidConfiguration(format!(
                    "parent buffer {parent_buffer} has never been computed"
                )))?;
        // Reuse the site-likelihood buffer instead of allocating a fresh one
        // per call (allocation-free hot path).
        let mut site_lnl = std::mem::take(&mut self.bufs.site_log_likelihoods);
        let result = (|| {
            let child = if let Some(p) = &self.bufs.partials[child_buffer] {
                EdgeChild::Partials(p.as_slice())
            } else if let Some(st) = &self.bufs.tip_states[child_buffer] {
                EdgeChild::States(st.as_slice())
            } else {
                return Err(BeagleError::InvalidConfiguration(format!(
                    "child buffer {child_buffer} has never been written"
                )));
            };
            let cscale = cumulative_scale.map(|i| self.bufs.scale_buffers[i].as_slice());
            Ok((self.dispatch.integrate_edge)(
                &mut site_lnl,
                &parent,
                child,
                &self.bufs.matrices[matrix_index],
                &self.bufs.frequencies[frequencies_index],
                &self.bufs.category_weights[category_weights_index],
                &self.bufs.pattern_weights,
                cscale,
                cfg.state_count,
                self.bufs.state_stride,
                cfg.pattern_count,
                0,
            ))
        })();
        self.bufs.site_log_likelihoods = site_lnl;
        self.bufs.partials[parent_buffer] = Some(parent);
        self.recorder
            .finish(sw, KernelClass::EdgeIntegrate, cfg.pattern_count as u64, 0);
        let total = result?;
        if total.is_nan() {
            return Err(BeagleError::NumericalFailure(
                "edge log-likelihood is NaN (consider enabling scaling)".into(),
            ));
        }
        Ok(total)
    }

    fn get_site_log_likelihoods(&self) -> Result<Vec<f64>> {
        Ok(widen_slice(&self.bufs.site_log_likelihoods))
    }

    fn statistics(&self) -> Option<obs::InstanceStats> {
        self.recorder.stats()
    }

    fn take_journal(&mut self) -> Vec<obs::Event> {
        self.recorder.take_journal()
    }
}
