//! Figure 4 — partial-likelihoods throughput vs unique site patterns.
//!
//! Two panels, as in the paper:
//! * nucleotide model (4 states, 4 rate categories), pattern sweep 10²…10⁶;
//! * codon model (61 states, 1 category), pattern sweep 10²…5·10⁴.
//!
//! Series and their timing provenance:
//! * `CUDA P5000`, `OpenCL P5000`, `OpenCL S9170`, `OpenCL R9Nano` — shared
//!   kernels executed functionally, **modeled** device time (roofline);
//! * `OpenCL-x86`, `C++ threads`, `serial` — **measured** on this host;
//! * `Phi (modeled)`, `Xeon x2 (modeled)` — the multicore-CPU model for the
//!   paper's hosts (this machine cannot measure 56/256-thread scaling).
//!
//! Single precision throughout (the paper's Fig. 4 is single precision; it
//! notes SSE was not used as BEAGLE lacked single-precision SSE).

use beagle_bench::cpu_model::CpuModel;
use beagle_bench::{bench_named, quick_mode, reps_for};
use genomictest::{ModelKind, Problem, Scenario};

// 16 taxa, as in the paper's nucleotide application dataset — also needed so
// the 4-state column space (4^taxa) can hold ≥10⁶ unique patterns.
const TAXA: usize = 16;

struct Series {
    name: &'static str,
    /// Implementation name for measured series, or None for modeled.
    impl_name: Option<&'static str>,
}

fn sweep(model: ModelKind, pattern_counts: &[usize], categories: usize) {
    let series = [
        Series {
            name: "CUDA:P5000",
            impl_name: Some("CUDA (NVIDIA Quadro P5000 (simulated))"),
        },
        Series {
            name: "OpenCL:P5000",
            impl_name: Some("OpenCL-GPU (NVIDIA Quadro P5000 (simulated))"),
        },
        Series {
            name: "OpenCL:S9170",
            impl_name: Some("OpenCL-GPU (AMD FirePro S9170 (simulated))"),
        },
        Series {
            name: "OpenCL:R9Nano",
            impl_name: Some("OpenCL-GPU (AMD Radeon R9 Nano (simulated))"),
        },
        Series {
            name: "OpenCL-x86",
            impl_name: Some("OpenCL-x86"),
        },
        Series {
            name: "C++threads",
            impl_name: Some("CPU-threadpool"),
        },
        Series {
            name: "serial",
            impl_name: Some("CPU-serial"),
        },
        Series {
            name: "Xeon2(mod)",
            impl_name: None,
        },
        Series {
            name: "Phi(mod)",
            impl_name: None,
        },
    ];

    // Header.
    print!("{:>9}", "patterns");
    for s in &series {
        print!(" {:>13}", s.name);
    }
    println!();

    let xeon = CpuModel::dual_xeon_e5_2680v4();
    let phi = CpuModel::xeon_phi_7210();
    let states = model.state_count();

    for &patterns in pattern_counts {
        let problem = Problem::generate(&Scenario {
            model,
            taxa: TAXA,
            patterns,
            categories,
            seed: 600 + patterns as u64,
        });
        let reps = reps_for(&problem, 6e8);
        print!("{patterns:>9}");
        for s in &series {
            let gflops = match s.impl_name {
                Some(name) => bench_named(&problem, name, true, reps).map(|r| r.gflops),
                None => {
                    let m = if s.name.starts_with("Phi") {
                        &phi
                    } else {
                        &xeon
                    };
                    let threads = m.hardware_threads;
                    Some(m.pool_gflops(threads, TAXA, patterns, states, categories))
                }
            };
            match gflops {
                Some(g) if g >= 100.0 => print!(" {g:>13.1}"),
                Some(g) => print!(" {g:>13.2}"),
                None => print!(" {:>13}", "-"),
            }
        }
        println!();
    }
}

fn main() {
    let quick = quick_mode();
    println!("== Figure 4: throughput (GFLOPS) vs unique site patterns ==");
    println!("timing: GPU series modeled (roofline); x86/threads/serial measured on this host;");
    println!("        Xeon2/Phi columns modeled multicore CPUs (see DESIGN.md)\n");

    println!("-- nucleotide model (4 states, 4 rate categories, single precision) --");
    let nuc: &[usize] = if quick {
        &[100, 1_000, 10_000, 100_000]
    } else {
        &[
            100, 316, 1_000, 3_162, 10_000, 31_623, 100_000, 316_228, 1_000_000,
        ]
    };
    sweep(ModelKind::Nucleotide, nuc, 4);

    println!("\n-- codon model (61 states, 1 rate category, single precision) --");
    let codon: &[usize] = if quick {
        &[100, 1_000, 10_000]
    } else {
        &[100, 316, 1_000, 3_162, 10_000, 28_419, 50_000]
    };
    sweep(ModelKind::Codon, codon, 1);

    println!("\n-- paper reference points --");
    println!("nucleotide peak: AMD R9 Nano 444.92 GFLOPS at 475,081 patterns (~58x serial);");
    println!("                 dual Xeon (OpenCL-x86) fastest CPU, ~5.1x below the R9 Nano;");
    println!("                 C++ threads peak 328.78 GFLOPS at 20,092 patterns.");
    println!("codon peak:      AMD R9 Nano 1324.19 GFLOPS at 28,419 patterns (~253x serial,");
    println!("                 ~2x the OpenCL-x86 dual Xeon result).");
}
