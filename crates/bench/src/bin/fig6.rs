//! Figure 6 — application-level MrBayes speedups.
//!
//! Runs the same MC³ analysis (4 Metropolis-coupled chains) under different
//! likelihood providers and reports total likelihood-computation time
//! relative to the MrBayes-MPI double-precision baseline (the paper's
//! reference). Two datasets, as in §VIII-C:
//!
//! * nucleotide: 16 taxa (paper: 306,780 unique patterns; default here is
//!   scaled down — use `--paper` for the full size);
//! * codon: 15 taxa (paper: 6,080 unique codon patterns).
//!
//! Timing provenance: native/threaded/OpenCL-x86 engines are measured wall
//! time; the OpenCL-GPU engine reports modeled device time (DESIGN.md §1).
//! A second table gives modeled dual-Xeon speedups for the CPU rows, since
//! this host cannot exhibit 56-thread scaling.

use beagle_accel::{catalog, OpenClGpuFactory, OpenClX86Factory, PerfModel};
use beagle_bench::cpu_model::CpuModel;
use beagle_bench::{paper_mode, quick_mode};
use beagle_core::manager::ImplementationFactory;
use beagle_core::Flags;
use beagle_cpu::{CpuFactory, ThreadingModel};
use beagle_mcmc::{run_mc3, BeagleEngine, LikelihoodEngine, Mc3Config, ModelParams, NativeEngine};
use beagle_phylo::Tree;
use genomictest::{ModelKind, Problem, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct EngineSpec {
    label: &'static str,
    kind: EngineKind,
    single: bool,
}

enum EngineKind {
    Native,
    ThreadPool,
    OpenClX86,
    OpenClGpuS9170,
}

fn make_engines(
    spec: &EngineSpec,
    problem: &Problem,
    chains: usize,
) -> Vec<Box<dyn LikelihoodEngine>> {
    (0..chains)
        .map(|_| -> Box<dyn LikelihoodEngine> {
            let precision = if spec.single {
                Flags::PRECISION_SINGLE
            } else {
                Flags::PRECISION_DOUBLE
            };
            match spec.kind {
                EngineKind::Native => {
                    if spec.single {
                        Box::new(NativeEngine::<f32>::new(
                            problem.tree.taxon_count(),
                            problem.patterns.clone(),
                            problem.rates.clone(),
                            problem.model.state_count(),
                        ))
                    } else {
                        Box::new(NativeEngine::<f64>::new(
                            problem.tree.taxon_count(),
                            problem.patterns.clone(),
                            problem.rates.clone(),
                            problem.model.state_count(),
                        ))
                    }
                }
                EngineKind::ThreadPool => {
                    let f = CpuFactory::new(ThreadingModel::ThreadPool, false);
                    let inst = f.create(&problem.config(), precision, Flags::NONE).unwrap();
                    Box::new(BeagleEngine::new(
                        inst,
                        problem.patterns.clone(),
                        problem.rates.clone(),
                        true,
                    ))
                }
                EngineKind::OpenClX86 => {
                    let f = OpenClX86Factory::new();
                    let inst = f.create(&problem.config(), precision, Flags::NONE).unwrap();
                    Box::new(BeagleEngine::new(
                        inst,
                        problem.patterns.clone(),
                        problem.rates.clone(),
                        true,
                    ))
                }
                EngineKind::OpenClGpuS9170 => {
                    let f = OpenClGpuFactory::new(catalog::firepro_s9170());
                    let inst = f.create(&problem.config(), precision, Flags::NONE).unwrap();
                    Box::new(BeagleEngine::new(
                        inst,
                        problem.patterns.clone(),
                        problem.rates.clone(),
                        true,
                    ))
                }
            }
        })
        .collect()
}

fn run_dataset(name: &str, model: ModelKind, taxa: usize, patterns: usize, generations: usize) {
    println!("-- {name}: {taxa} taxa, {patterns} unique patterns, {generations} generations, 4 chains --");
    let problem = Problem::generate(&Scenario {
        model,
        taxa,
        patterns,
        categories: if matches!(model, ModelKind::Nucleotide) {
            4
        } else {
            1
        },
        seed: 800,
    });
    let params = match model {
        ModelKind::Codon => ModelParams::Codon {
            kappa: 2.0,
            omega: 0.5,
        },
        _ => ModelParams::Nucleotide { kappa: 2.0 },
    };
    let mut rng = SmallRng::seed_from_u64(801);
    let start_tree = Tree::random(taxa, 0.1, &mut rng);
    let config = Mc3Config {
        chains: 4,
        generations,
        swap_interval: 5,
        sample_interval: 5,
        heating: 0.1,
        seed: 802,
    };

    let specs = [
        EngineSpec {
            label: "MrBayes-MPI (native, double)",
            kind: EngineKind::Native,
            single: false,
        },
        EngineSpec {
            label: "MrBayes-SSE (native, single)",
            kind: EngineKind::Native,
            single: true,
        },
        EngineSpec {
            label: "C++ threads, double",
            kind: EngineKind::ThreadPool,
            single: false,
        },
        EngineSpec {
            label: "C++ threads, single",
            kind: EngineKind::ThreadPool,
            single: true,
        },
        EngineSpec {
            label: "OpenCL-x86, double",
            kind: EngineKind::OpenClX86,
            single: false,
        },
        EngineSpec {
            label: "OpenCL-x86, single",
            kind: EngineKind::OpenClX86,
            single: true,
        },
        EngineSpec {
            label: "OpenCL-GPU S9170, double",
            kind: EngineKind::OpenClGpuS9170,
            single: false,
        },
        EngineSpec {
            label: "OpenCL-GPU S9170, single",
            kind: EngineKind::OpenClGpuS9170,
            single: true,
        },
    ];

    let mut baseline = None;
    println!(
        "{:<30} {:>12} {:>10} {:>18} timing",
        "engine", "lik. time s", "speedup", "final lnL"
    );
    for spec in &specs {
        let mut engines = make_engines(spec, &problem, config.chains);
        let result = run_mc3(&config, &start_tree, params, &mut engines);
        let secs = result.likelihood_time.as_secs_f64();
        if baseline.is_none() {
            baseline = Some(secs);
        }
        let simulated = matches!(spec.kind, EngineKind::OpenClGpuS9170);
        println!(
            "{:<30} {:>12.3} {:>10.2} {:>18.3} {}",
            spec.label,
            secs,
            baseline.unwrap() / secs,
            result.final_log_likelihood,
            if simulated { "simulated" } else { "measured" }
        );
    }

    // Modeled dual-Xeon speedups (shape reference for the CPU rows).
    let states = model.state_count();
    let cats = if matches!(model, ModelKind::Nucleotide) {
        4
    } else {
        1
    };
    let xeon = CpuModel::dual_xeon_e5_2680v4();
    // Native double: serial rate at half the single-precision rate.
    let native_double = xeon.serial_gflops(taxa, patterns, states, cats) * 0.5;
    let native_single = xeon.serial_gflops(taxa, patterns, states, cats);
    let pool_single = xeon.pool_gflops(56, taxa, patterns, states, cats);
    let pool_double = pool_single * 0.5;
    let x86_single = pool_single * 1.12;
    let x86_double = pool_double * 1.12;
    // GPU: roofline rate for the partials kernel dominates the application.
    let gpu = PerfModel::new(catalog::firepro_s9170());
    let plan = beagle_accel::grid::plan_gpu(&catalog::firepro_s9170(), states, 4);
    let gpu_rate = |double: bool| {
        let elem = if double { 8 } else { 4 };
        let cost = gpu.partials_cost(
            states,
            plan.padded_patterns(patterns),
            cats,
            plan.group_count(patterns),
            elem,
        );
        let t = gpu.kernel_time(&cost, states, double, true, 18.0);
        cost.flops / t.as_secs_f64() / 1e9
    };
    println!("\n   modeled dual-Xeon speedups vs native double:");
    println!(
        "   native-SSE single {:.1}x | C++ threads {:.1}x (single) {:.1}x (double) | \
         OpenCL-x86 {:.1}x / {:.1}x | S9170 {:.1}x / {:.1}x",
        native_single / native_double,
        pool_single / native_double,
        pool_double / native_double,
        x86_single / native_double,
        x86_double / native_double,
        gpu_rate(false) / native_double,
        gpu_rate(true) / native_double,
    );
}

fn main() {
    println!("== Figure 6: MrBayes-lite application speedups vs MrBayes-MPI (double) ==\n");
    let (nuc_patterns, nuc_gens, codon_patterns, codon_gens) = if paper_mode() {
        (306_780, 10, 6_080, 10)
    } else if quick_mode() {
        // Codon stays above the 512-pattern threading threshold so the
        // thread-pool path is actually exercised.
        (2_000, 10, 600, 6)
    } else {
        (10_000, 20, 1_500, 10)
    };
    run_dataset(
        "nucleotide (RNA-Seq-like)",
        ModelKind::Nucleotide,
        16,
        nuc_patterns,
        nuc_gens,
    );
    println!();
    run_dataset(
        "codon (arthropod-like)",
        ModelKind::Codon,
        15,
        codon_patterns,
        codon_gens,
    );

    println!("\n-- paper reference (Fig. 6, dual Xeon E5-2680v4 + FirePro S9170) --");
    println!("nucleotide: OpenCL-GPU 7.6x over fastest single-precision MrBayes;");
    println!("codon:      OpenCL-GPU 13.8x over fastest single-precision MrBayes;");
    println!("            C++ threads codon-model speedup 39x vs MrBayes-MPI-SSE (abstract);");
    println!("            OpenCL-x86 has a significant advantage for codon inference.");
}
