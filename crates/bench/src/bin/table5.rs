//! Table V — OpenCL-x86 work-group size optimization.
//!
//! Compares the GPU kernel variant running on the CPU (the paper's first
//! row: the unadapted OpenCL-GPU solution on the Xeons) against the
//! x86-specific kernel variant (work-item per pattern, loop over states, no
//! local memory) across work-group sizes of 64…1024 patterns.
//!
//! Both rows here are *real host execution*, wall-clock timed. The GPU
//! variant runs the actual `kernels::gpu` code path — per-(pattern, state)
//! work items, local-memory staging per work-group — which is exactly the
//! organization that wastes a CPU.

use std::time::Instant;

use beagle_accel::grid::plan_gpu;
use beagle_accel::kernels::gpu::{partials_kernel, PartialsArgs};
use beagle_accel::kernels::Operand;
use beagle_accel::{catalog, OpenClX86Factory};
use beagle_bench::quick_mode;
use beagle_core::manager::ImplementationFactory;
use beagle_core::real::narrow_slice;
use beagle_core::Flags;
use genomictest::{benchmark, ModelKind, Problem, Scenario};

/// Wall-clock throughput of the GPU kernel variant executed on the host.
fn gpu_variant_on_host(problem: &Problem, reps: usize) -> f64 {
    let cfg = problem.config();
    let (s, n_pat, n_cat) = (cfg.state_count, cfg.pattern_count, cfg.category_count);
    // Materialize operands once (children as one-hot partials, matrices from
    // the model) so the timed loop is kernels only, matching `benchmark`.
    let spec = catalog::dual_xeon_e5_2680v4();
    let plan = plan_gpu(&spec, s, 4);
    let len = n_cat * n_pat * s;
    let mut rng_state = 0x9e3779b9u64;
    let mut noise = || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        0.05 + (rng_state >> 40) as f32 / (1u64 << 24) as f32
    };
    let c1: Vec<f32> = (0..len).map(|_| noise()).collect();
    let c2: Vec<f32> = (0..len).map(|_| noise()).collect();
    let m = problem.model.transition_matrix(0.1);
    let mut m1: Vec<f32> = Vec::with_capacity(n_cat * s * s);
    for _ in 0..n_cat {
        m1.extend(narrow_slice::<f32>(m.as_slice()));
    }
    let mut dest = vec![0.0f32; len];

    let ops = problem.tree.taxon_count() - 1;
    let start = Instant::now();
    for _ in 0..reps {
        for _ in 0..ops {
            partials_kernel::<beagle_accel::OpenClDialect, f32>(PartialsArgs {
                dest: &mut dest,
                c1: Operand::Partials(&c1),
                c2: Operand::Partials(&c2),
                m1: &m1,
                m2: &m1,
                states: s,
                patterns: n_pat,
                categories: n_cat,
                plan,
                fma_enabled: true,
            });
        }
    }
    let elapsed = start.elapsed().as_secs_f64() / reps as f64;
    problem.traversal_flops() / elapsed / 1e9
}

fn main() {
    let patterns = 10_000;
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns,
        categories: 4,
        seed: 500,
    });
    let reps = if quick_mode() { 2 } else { 5 };
    let threads = beagle_cpu::host_threads();

    println!("== Table V: OpenCL-x86 work-group size optimization ==");
    println!(
        "nucleotide model, {patterns} patterns, 4 categories, single precision, {threads} host thread(s)\n"
    );
    println!(
        "{:<26} {:>16} {:>12} {:>10}",
        "solution", "WG size (patterns)", "GFLOPS", "speedup"
    );

    let gpu_variant = gpu_variant_on_host(&problem, reps);
    println!(
        "{:<26} {:>16} {:>12.2} {:>10}",
        "OpenCL-GPU-variant", 64, gpu_variant, "1.00"
    );

    for &wg in &[64usize, 128, 256, 512, 1024] {
        let factory = OpenClX86Factory::with_threads(threads, wg);
        let mut inst = factory
            .create(&problem.config(), Flags::PRECISION_SINGLE, Flags::NONE)
            .expect("x86 instance");
        let r = benchmark(&problem, inst.as_mut(), reps);
        println!(
            "{:<26} {:>16} {:>12.2} {:>10.2}",
            "OpenCL-x86",
            wg,
            r.gflops,
            r.gflops / gpu_variant
        );
    }

    println!("\n-- paper reference (Table V, dual Xeon E5-2680v4) --");
    println!(
        "{:<26} {:>16} {:>12} {:>10}",
        "solution", "WG size (patterns)", "GFLOPS", "speedup"
    );
    println!(
        "{:<26} {:>16} {:>12.2} {:>10}",
        "OpenCL-GPU-variant", 64, 15.75, "1.00"
    );
    for (wg, g, sp) in [
        (64, 79.65, 5.06),
        (128, 85.51, 5.43),
        (256, 98.36, 6.25),
        (512, 98.09, 6.23),
        (1024, 96.51, 6.13),
    ] {
        println!("{:<26} {:>16} {:>12.2} {:>10.2}", "OpenCL-x86", wg, g, sp);
    }
    println!(
        "\nnote: the paper selects 256 patterns — the smallest work-group size at\n\
         near-peak throughput — to minimize pattern padding."
    );
}
