//! Instance-pool throughput and tail latency vs a single shared instance.
//!
//! Fixture: eight concurrent session streams (codon model, so modeled device
//! time dominates per-launch overhead) served two ways:
//!
//! * **mutex** — one simulated-GPU instance behind a `Mutex`, eight client
//!   threads taking turns: every evaluation serializes on the single device,
//!   so the aggregate modeled time is the *sum* of all evaluations.
//! * **pool** — a four-worker [`beagle_core::pool`] fleet of the same
//!   implementation: each worker's device serializes only its own share, and
//!   the fleet's modeled makespan is the *max* over workers.
//!
//! The headline number in `BENCH_pool.json` is aggregate throughput
//! improvement = mutex modeled total / pool modeled makespan; the acceptance
//! bar is ≥ 3× on the 4-worker fleet. Per-ticket wall latencies (p50/p95/p99)
//! are reported for both modes but not asserted — on a 1-core CI host wall
//! time measures the scheduler, not the devices.
//!
//! Timing provenance: the headline is **modeled** device time (DESIGN.md §1),
//! which is what makes the number host-independent: it reports the
//! concurrency the fleet would achieve on real hardware, where each worker's
//! device advances its own clock.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use beagle_accel::catalog;
use beagle_core::{BufferId, InstanceSpec, Lane, PoolBuilder, SessionRequest};
use genomictest::{full_manager, ModelKind, Problem, Scenario};

const WORKERS: usize = 4;
const CLIENTS: usize = 8;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn gpu_name() -> String {
    format!("OpenCL-GPU ({})", catalog::radeon_r9_nano().name)
}

/// One self-contained session per client stream.
fn session(problem: &Problem) -> SessionRequest {
    let eig = problem.model.eigen();
    SessionRequest {
        tip_states: (0..problem.tree.taxon_count())
            .map(|t| problem.patterns.tip_states(t))
            .collect(),
        pattern_weights: problem.patterns.weights().to_vec(),
        category_rates: problem.rates.rates.clone(),
        category_weights: problem.rates.weights.clone(),
        frequencies: problem.model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: problem.tree.branch_assignments(),
        operations: problem.operations(false),
        root: BufferId(problem.tree.root()),
        scaled: false,
        deadline: None,
    }
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn latency_json(latencies: &mut [Duration]) -> String {
    latencies.sort();
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        quantile(latencies, 0.50).as_micros(),
        quantile(latencies, 0.95).as_micros(),
        quantile(latencies, 0.99).as_micros()
    )
}

fn main() {
    let rounds = if quick_mode() { 3 } else { 4 };
    let patterns = if quick_mode() { 400 } else { 800 };
    let problems: Vec<Problem> = (0..CLIENTS)
        .map(|i| {
            Problem::generate(&Scenario {
                model: ModelKind::Codon,
                taxa: 8,
                patterns,
                categories: 2,
                seed: 100 + i as u64,
            })
        })
        .collect();
    let sessions: Vec<SessionRequest> = problems.iter().map(session).collect();
    let manager = full_manager();
    // Memoization would collapse the repeated evaluations to zero device
    // time in both modes; disable it so the bench measures scheduling.
    let spec = InstanceSpec::with_config(problems[0].config()).incremental(false);

    // -- Baseline: one shared instance behind a mutex. --------------------
    let inst = spec
        .clone()
        .named(gpu_name())
        .instantiate(&manager)
        .expect("simulated GPU exists");
    let shared = Arc::new(Mutex::new(inst));
    let mutex_results: Vec<Mutex<Vec<f64>>> =
        (0..CLIENTS).map(|_| Mutex::new(Vec::new())).collect();
    let mutex_latencies = Mutex::new(Vec::new());
    let mutex_start = shared
        .lock()
        .unwrap()
        .peek_simulated_time()
        .expect("simulated backend");
    std::thread::scope(|scope| {
        for (client, results) in mutex_results.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let session = &sessions[client];
            let latencies = &mutex_latencies;
            scope.spawn(move || {
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let mut inst = shared.lock().unwrap();
                    let lnl = session.evaluate(inst.as_mut()).expect("mutex evaluation");
                    drop(inst);
                    latencies.lock().unwrap().push(t0.elapsed());
                    results.lock().unwrap().push(lnl);
                }
            });
        }
    });
    let mutex_modeled = shared
        .lock()
        .unwrap()
        .peek_simulated_time()
        .expect("simulated backend")
        - mutex_start;

    // -- Pool: four workers of the same implementation. -------------------
    let pool = PoolBuilder::from_spec(spec)
        .workers(WORKERS)
        .pin([gpu_name()])
        .queue_capacity(64)
        .build(&manager)
        .expect("pool builds");
    let handle = pool.handle();
    let pool_results: Vec<Mutex<Vec<f64>>> = (0..CLIENTS).map(|_| Mutex::new(Vec::new())).collect();
    let pool_latencies = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (client, results) in pool_results.iter().enumerate() {
            let handle = handle.clone();
            let session = sessions[client].clone();
            let latencies = &pool_latencies;
            let lane = if client % 2 == 0 {
                Lane::Interactive
            } else {
                Lane::Batch
            };
            scope.spawn(move || {
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let ticket = handle
                        .submit_session(lane, session.clone())
                        .expect("pool accepts sessions");
                    let lnl = ticket
                        .wait()
                        .expect("ticket resolves")
                        .expect("pool evaluation");
                    latencies.lock().unwrap().push(t0.elapsed());
                    results.lock().unwrap().push(lnl);
                }
            });
        }
    });
    let (drained, fleet) = pool.shutdown_drain(None);
    assert!(drained, "all tickets resolved before the drain");
    // Read counters only after the drain: a ticket resolves inside the job
    // closure, slightly before the worker books the completion.
    let stats = handle.stats();
    let per_worker: Vec<Duration> = fleet
        .iter()
        .map(|w| w.peek_simulated_time().expect("simulated backend"))
        .collect();
    let pool_makespan = per_worker.iter().max().copied().unwrap_or_default();

    // -- Correctness: every pooled result bit-matches the mutex baseline. --
    let mut correct = true;
    for client in 0..CLIENTS {
        let mutex = mutex_results[client].lock().unwrap();
        let pooled = pool_results[client].lock().unwrap();
        correct &= mutex.len() == rounds && pooled.len() == rounds;
        for (a, b) in mutex.iter().zip(pooled.iter()) {
            correct &= a.to_bits() == b.to_bits();
        }
    }

    let speedup = mutex_modeled.as_secs_f64() / pool_makespan.as_secs_f64();
    let jobs = (CLIENTS * rounds) as u64;

    println!(
        "== instance pool: {CLIENTS} session streams x {rounds} rounds on {WORKERS}x {} ==",
        gpu_name()
    );
    println!(
        "mutex modeled total:  {:>10.3} ms",
        mutex_modeled.as_secs_f64() * 1e3
    );
    println!(
        "pool modeled makespan:{:>10.3} ms  (per-worker: {:?})",
        pool_makespan.as_secs_f64() * 1e3,
        per_worker
            .iter()
            .map(|d| format!("{:.3} ms", d.as_secs_f64() * 1e3))
            .collect::<Vec<_>>()
    );
    println!("aggregate throughput: {speedup:.2}x (acceptance bar: 3x)");
    println!(
        "pool scheduling:      {} completed, {} stolen, max queue depth {}",
        stats.completed, stats.stolen, stats.max_queue_depth
    );
    println!("correct:              {correct} (pooled bit-identical to mutex baseline)");

    assert_eq!(stats.completed, jobs, "every submitted session must finish");
    assert!(correct, "pooling must never change a result");
    assert!(
        speedup >= 3.0,
        "4-worker pool must beat the shared-mutex instance 3x, got {speedup:.2}x"
    );

    let mut mutex_lat = mutex_latencies.into_inner().unwrap();
    let mut pool_lat = pool_latencies.into_inner().unwrap();
    let mut json = String::from("{\n  \"benchmark\": \"pool\",\n");
    json.push_str(&format!(
        "  \"fixture\": {{\"implementation\": \"{}\", \"workers\": {WORKERS}, \"clients\": {CLIENTS}, \"rounds\": {rounds}, \"patterns\": {patterns}}},\n",
        gpu_name()
    ));
    json.push_str(&format!(
        "  \"mutex_modeled_total_ns\": {},\n",
        mutex_modeled.as_nanos()
    ));
    json.push_str(&format!(
        "  \"pool_modeled_makespan_ns\": {},\n",
        pool_makespan.as_nanos()
    ));
    json.push_str(&format!(
        "  \"pool_worker_modeled_ns\": [{}],\n",
        per_worker
            .iter()
            .map(|d| d.as_nanos().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"throughput_speedup\": {speedup:.4},\n"));
    json.push_str(&format!(
        "  \"mutex_wall_latency_us\": {},\n",
        latency_json(&mut mutex_lat)
    ));
    json.push_str(&format!(
        "  \"pool_wall_latency_us\": {},\n",
        latency_json(&mut pool_lat)
    ));
    json.push_str(&format!("  \"pool_stats\": {},\n", stats.to_json()));
    json.push_str(&format!("  \"correct\": {correct}\n"));
    json.push_str("}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pool.json".into());
    std::fs::write(&out, json).expect("write BENCH_pool.json");
    println!("\nwrote {out}");
}
