//! Deferred execution — eager vs. queued launch accounting.
//!
//! The operation queue batches each dependency level of the traversal into
//! one submission, so the modeled device pays its kernel-launch overhead
//! once per *level* instead of once per *operation* (DESIGN.md §6). This
//! binary quantifies that win on the simulated GPUs: per-traversal modeled
//! time in eager (`COMPUTATION_SYNCH`) vs. queued (`COMPUTATION_ASYNCH`)
//! mode across tree sizes, then the eigen/matrix cache counters under the
//! MCMC access pattern (identical re-proposals).
//!
//! Timing provenance: all GPU rows are **modeled** device times (the
//! roofline perf model, DESIGN.md §1); the queue win is the launch-overhead
//! term, which the model charges per submission exactly as a real driver
//! would.

use beagle_bench::quick_mode;
use beagle_core::Flags;
use genomictest::{full_manager, ModelKind, Problem, Scenario};
use std::time::Duration;

const DEVICES: [&str; 2] = [
    "CUDA (NVIDIA Quadro P5000 (simulated))",
    "OpenCL-GPU (AMD Radeon R9 Nano (simulated))",
];

/// Modeled time for `reps` full traversals in one queue mode.
fn traversal_time(problem: &Problem, name: &str, asynch: bool, reps: usize) -> Option<Duration> {
    let mode = if asynch {
        Flags::COMPUTATION_ASYNCH
    } else {
        Flags::COMPUTATION_SYNCH
    };
    let mut inst = full_manager()
        .create_instance_by_name(name, &problem.config(), Flags::PRECISION_DOUBLE | mode)
        .ok()?;
    // The timed loop repeats identical traversals; don't let the memo layer
    // skip them.
    inst.set_incremental(false);
    problem.load(inst.as_mut());
    let ops = problem.operations(false);
    inst.update_partials(&ops).expect("warmup");
    inst.wait_for_computation().expect("warmup flush");
    inst.reset_simulated_time();
    for _ in 0..reps {
        inst.update_partials(&ops).expect("timed traversal");
    }
    inst.wait_for_computation().expect("flush");
    inst.simulated_time().map(|t| t / reps as u32)
}

fn main() {
    let reps = if quick_mode() { 3 } else { 10 };
    let taxa_sweep: &[usize] = if quick_mode() {
        &[16, 64]
    } else {
        &[16, 64, 128, 256]
    };

    println!("deferred execution: modeled per-traversal time, eager vs queued");
    println!("(double precision, nucleotide, 1024 patterns, 4 rate categories)");
    println!();
    println!(
        "{:<44} {:>6} {:>12} {:>12} {:>9}",
        "device", "taxa", "eager", "queued", "speedup"
    );
    for &taxa in taxa_sweep {
        let problem = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa,
            patterns: 1024,
            categories: 4,
            seed: 11,
        });
        for name in DEVICES {
            let (Some(eager), Some(queued)) = (
                traversal_time(&problem, name, false, reps),
                traversal_time(&problem, name, true, reps),
            ) else {
                continue;
            };
            println!(
                "{:<44} {:>6} {:>10.1}us {:>10.1}us {:>8.2}x",
                name,
                taxa,
                eager.as_secs_f64() * 1e6,
                queued.as_secs_f64() * 1e6,
                eager.as_secs_f64() / queued.as_secs_f64(),
            );
        }
    }

    println!();
    println!("eigen/matrix cache under repeated proposals (MCMC access pattern)");
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 64,
        patterns: 1024,
        categories: 4,
        seed: 11,
    });
    let mut inst = full_manager()
        .create_instance_by_name(
            DEVICES[0],
            &problem.config(),
            Flags::PRECISION_DOUBLE | Flags::COMPUTATION_ASYNCH,
        )
        .expect("CUDA instance");
    let mut lnl_bits = Vec::new();
    for pass in 0..3 {
        problem.load(inst.as_mut());
        let lnl = problem.evaluate(inst.as_mut(), false);
        lnl_bits.push(lnl.to_bits());
        let s = inst.queue_stats().expect("queued instance exposes stats");
        println!(
            "  pass {pass}: lnL {lnl:.6}  hits {:>4}  misses {:>4}  flushes {:>3}  levels {:>4}",
            s.eigen_cache_hits, s.eigen_cache_misses, s.flushes, s.levels_submitted
        );
    }
    assert!(
        lnl_bits.windows(2).all(|w| w[0] == w[1]),
        "cache changed results"
    );
    println!("  all passes bit-identical");
}
