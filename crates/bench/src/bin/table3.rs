//! Table III — CPU threading optimizations.
//!
//! Throughput (single-precision GFLOPS) of the core partial-likelihoods
//! function for the serial, futures, thread-create, and thread-pool models,
//! at 10,000 patterns across 8/16/64/128 tips (nucleotide, 4 rate
//! categories), as in §VI of the paper.
//!
//! Output has two sections: **measured** on this host (whose hardware-thread
//! count may be far below the paper's 56, hiding thread scaling) and
//! **modeled** for the paper's dual Xeon E5-2680v4 using
//! `beagle_bench::cpu_model` (see DESIGN.md §1 substitutions).

use beagle_bench::cpu_model::CpuModel;
use beagle_bench::{bench_named, cell, quick_mode, reps_for};
use genomictest::{ModelKind, Problem, Scenario};

fn main() {
    let patterns = 10_000;
    let cats = 4;
    let tips_list: &[usize] = if quick_mode() {
        &[8, 16]
    } else {
        &[8, 16, 64, 128]
    };
    let host_threads = beagle_cpu::host_threads();

    println!("== Table III: CPU threading optimizations ==");
    println!(
        "nucleotide model, {patterns} unique patterns, {cats} rate categories, single precision"
    );
    println!("host hardware threads: {host_threads}\n");

    println!("-- measured on this host --");
    println!(
        "{:>5} {:>10} {:>10} {:>13} {:>11} {:>9}",
        "tips", "serial", "futures", "thread-create", "thread-pool", "speedup"
    );
    for &tips in tips_list {
        let problem = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: tips,
            patterns,
            categories: cats,
            seed: 100 + tips as u64,
        });
        let reps = reps_for(&problem, 4e8);
        let serial = bench_named(&problem, "CPU-serial", true, reps).map(|r| r.gflops);
        let futures = bench_named(&problem, "CPU-futures", true, reps).map(|r| r.gflops);
        let create = bench_named(&problem, "CPU-threadcreate", true, reps).map(|r| r.gflops);
        let pool = bench_named(&problem, "CPU-threadpool", true, reps).map(|r| r.gflops);
        let speedup = match (serial, pool) {
            (Some(s), Some(p)) if s > 0.0 => format!("{:>9.2}", p / s),
            _ => format!("{:>9}", "-"),
        };
        println!(
            "{:>5} {} {} {:>13} {:>11} {}",
            tips,
            cell(serial),
            cell(futures),
            cell(create).trim_start(),
            cell(pool).trim_start(),
            speedup
        );
    }

    println!("\n-- modeled for dual Xeon E5-2680v4 (56 threads), fitted constants --");
    println!(
        "{:>5} {:>10} {:>10} {:>13} {:>11} {:>9}",
        "tips", "serial", "futures", "thread-create", "thread-pool", "speedup"
    );
    let model = CpuModel::dual_xeon_e5_2680v4();
    for &tips in tips_list {
        let problem = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: tips,
            patterns,
            categories: cats,
            seed: 100 + tips as u64,
        });
        let ops = problem.operations(false);
        let serial = model.serial_gflops(tips, patterns, 4, cats);
        let futures = model.futures_gflops(&ops, tips, patterns, 4, cats);
        let create = model.create_gflops(56, tips, patterns, 4, cats);
        let pool = model.pool_gflops(56, tips, patterns, 4, cats);
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>13.2} {:>11.2} {:>9.2}",
            tips,
            serial,
            futures,
            create,
            pool,
            pool / serial
        );
    }

    println!("\n-- paper reference (Table III) --");
    println!(
        "{:>5} {:>10} {:>10} {:>13} {:>11} {:>9}",
        "tips", "serial", "futures", "thread-create", "thread-pool", "speedup"
    );
    for (tips, row) in [
        (8, [35.82, 37.92, 39.07, 193.10, 5.39]),
        (16, [35.47, 59.70, 78.26, 258.99, 7.30]),
        (64, [14.95, 78.67, 87.91, 217.24, 14.53]),
        (128, [13.62, 61.61, 60.19, 126.95, 9.31]),
    ] {
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>13.2} {:>11.2} {:>9.2}",
            tips, row[0], row[1], row[2], row[3], row[4]
        );
    }
}
