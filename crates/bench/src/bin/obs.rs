//! Observability overhead + resource auto-benchmark.
//!
//! Two questions, answered with numbers in `BENCH_obs.json`:
//!
//! 1. **What does instrumentation cost?** The same CPU-serial traversal is
//!    timed with statistics off and on (`INSTANCE_STATS`), interleaved and
//!    min-of-rounds so scheduler noise cancels. The recorder adds a few
//!    counter updates per *kernel call* (not per pattern), so the target is
//!    <2% — and exactly 0 when the core crate is built with the
//!    `obs-disabled` feature, which compiles the recorder out.
//! 2. **What does the auto-benchmark see?** `benchmark_resources` runs a
//!    short calibrated workload on every registered factory and ranks them
//!    by measured throughput (modeled device time for simulated GPUs,
//!    wall time otherwise) — the ranking `create_instance_auto` consults.
//!
//! Timing provenance: overhead rows are **measured** wall time on this
//! host; GPU rows in the ranking are **modeled** device times (DESIGN.md §1).

use std::time::{Duration, Instant};

use beagle_core::{BeagleInstance, Flags, InstanceSpec, Recorder};
use genomictest::{full_manager, ModelKind, Problem, Scenario};

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// One full traversal + root integration, timed.
fn traversal(problem: &Problem, inst: &mut dyn BeagleInstance, reps: usize) -> Duration {
    let ops = problem.operations(false);
    let start = Instant::now();
    for _ in 0..reps {
        inst.update_partials(&ops).expect("traversal");
    }
    start.elapsed()
}

fn make(problem: &Problem, stats: bool) -> Box<dyn BeagleInstance> {
    let spec = InstanceSpec::with_config(problem.config())
        .prefer(Flags::PRECISION_DOUBLE)
        .named("CPU-serial");
    let spec = if stats { spec.with_stats() } else { spec };
    let mut inst = spec
        .instantiate(&full_manager())
        .expect("CPU-serial exists");
    // The overhead measurement repeats identical traversals; memoization
    // would skip them all and time nothing.
    inst.set_incremental(false);
    inst
}

fn main() {
    let (reps, rounds) = if quick_mode() { (3, 3) } else { (12, 7) };
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns: 2000,
        categories: 4,
        seed: 71,
    });
    let obs_compiled_in = Recorder::new(true).is_enabled();

    // --- 1. Overhead: stats-off vs stats-on, interleaved, min-of-rounds ---
    let mut off = make(&problem, false);
    let mut on = make(&problem, true);
    problem.load(off.as_mut());
    problem.load(on.as_mut());
    // Warm-up both (first-touch allocation).
    traversal(&problem, off.as_mut(), 1);
    traversal(&problem, on.as_mut(), 1);

    let mut best_off = Duration::MAX;
    let mut best_on = Duration::MAX;
    for _ in 0..rounds {
        best_off = best_off.min(traversal(&problem, off.as_mut(), reps));
        best_on = best_on.min(traversal(&problem, on.as_mut(), reps));
    }
    let overhead_pct = if obs_compiled_in {
        (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64() * 100.0
    } else {
        0.0
    };

    // Results must be bit-identical with and without instrumentation.
    let lnl_off = problem.evaluate(off.as_mut(), false);
    let lnl_on = problem.evaluate(on.as_mut(), false);
    let bit_exact = lnl_off.to_bits() == lnl_on.to_bits();

    println!("== observability overhead (CPU-serial, 16 taxa, 2000 patterns, 4 cats) ==");
    println!("obs compiled in:   {obs_compiled_in}");
    println!(
        "stats off (best):  {:>12.3} ms / {reps} traversals",
        best_off.as_secs_f64() * 1e3
    );
    println!(
        "stats on  (best):  {:>12.3} ms / {reps} traversals",
        best_on.as_secs_f64() * 1e3
    );
    println!("overhead:          {overhead_pct:>11.3}%");
    println!("bit-exact:         {bit_exact}");

    let stats_json = match on.statistics() {
        Some(stats) => stats.to_json(),
        None => "null".to_string(),
    };
    let journal_events = on.take_journal().len();

    // --- 2. Resource auto-benchmark: rank every registered factory ---
    let manager = full_manager();
    let ranking = manager.benchmark_resources(&problem.config(), Flags::NONE);
    println!("\n== benchmark_resources ranking (fastest first) ==");
    println!("{:<44} {:>12} {:>10}", "implementation", "time", "GFLOPS");
    for entry in &ranking {
        match &entry.error {
            None => {
                let (t, tag) = match entry.modeled {
                    Some(m) => (m, "modeled"),
                    None => (entry.wall, "wall"),
                };
                println!(
                    "{:<44} {:>9.3} {tag:<3} {:>8.2}",
                    entry.implementation,
                    t.as_secs_f64() * 1e3,
                    entry.throughput_gflops
                );
            }
            Some(e) => println!("{:<44} unmeasured: {e}", entry.implementation),
        }
    }

    // --- JSON report ---
    let mut json = String::from("{\n  \"benchmark\": \"obs\",\n");
    json.push_str(&format!("  \"obs_compiled_in\": {obs_compiled_in},\n"));
    json.push_str("  \"overhead\": {\n");
    json.push_str("    \"implementation\": \"CPU-serial\", \"taxa\": 16, \"patterns\": 2000, \"categories\": 4,\n");
    json.push_str(&format!(
        "    \"reps_per_round\": {reps}, \"rounds\": {rounds},\n"
    ));
    json.push_str(&format!(
        "    \"stats_off_ns\": {}, \"stats_on_ns\": {},\n",
        best_off.as_nanos(),
        best_on.as_nanos()
    ));
    json.push_str(&format!(
        "    \"overhead_pct\": {overhead_pct:.4}, \"bit_exact\": {bit_exact},\n"
    ));
    json.push_str(&format!("    \"journal_events\": {journal_events},\n"));
    json.push_str(&format!("    \"instance_stats\": {stats_json}\n"));
    json.push_str("  },\n  \"ranking\": [\n");
    for (i, entry) in ranking.iter().enumerate() {
        let modeled = match entry.modeled {
            Some(m) => m.as_nanos().to_string(),
            None => "null".to_string(),
        };
        let error = match &entry.error {
            Some(e) => format!("\"{}\"", e.replace('\\', "\\\\").replace('"', "\\\"")),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"implementation\": \"{}\", \"resource\": \"{}\", \"wall_ns\": {}, \"modeled_ns\": {}, \"gflops\": {:.4}, \"error\": {}}}{}\n",
            entry.implementation,
            entry.resource,
            entry.wall.as_nanos(),
            modeled,
            entry.throughput_gflops,
            error,
            if i + 1 < ranking.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".into());
    std::fs::write(&out, json).expect("write BENCH_obs.json");
    println!("\nwrote {out}");
}
