//! Kernel-level microbenchmark: GFLOPS and ns/pattern for each partials
//! kernel × state count × precision × dispatch path, written as
//! `BENCH_kernels.json` (for `scripts/bench.sh`) and printed as a table.
//!
//! Unlike the table/figure binaries this measures the kernels in isolation —
//! one category, one buffer set, no traversal — so the number is the raw
//! arithmetic throughput of the dispatch paths ("scalar" = dense unrolled
//! loops, "portable" = 4-state mul_add specializations where applicable,
//! "avx2" = explicit AVX2+FMA intrinsics), not end-to-end application speed.

use std::fmt::Write as _;
use std::time::Instant;

use beagle_core::real::Real;
use beagle_cpu::simd::{DispatchKind, DispatchReal};
use beagle_cpu::{host_fma_available, kernels};

/// Flop estimate per pattern for partials×partials: per destination state,
/// two length-`s` dot products (2s mul+add each) plus the combining multiply.
fn pp_flops(s: usize) -> f64 {
    (s * (4 * s + 1)) as f64
}

/// states×partials: one dot product plus one column multiply per state.
fn sp_flops(s: usize) -> f64 {
    (s * (2 * s + 1)) as f64
}

/// states×states: one multiply per state.
fn ss_flops(s: usize) -> f64 {
    s as f64
}

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

struct Row {
    kernel: &'static str,
    states: usize,
    precision: &'static str,
    path: &'static str,
    gflops: f64,
    ns_per_pattern: f64,
}

/// Time `body` (which performs `flops` floating-point ops per call) with
/// adaptive repetition, returning (gflops, ns/call-pattern-unit).
fn measure(n_pat: usize, flops_per_call: f64, mut body: impl FnMut()) -> (f64, f64) {
    let budget: f64 = if quick_mode() { 2e7 } else { 4e8 };
    let reps = ((budget / flops_per_call) as usize).clamp(3, 1_000_000);
    // Warm up caches and the branch predictor.
    for _ in 0..reps.div_ceil(10).min(50) {
        body();
    }
    let start = Instant::now();
    for _ in 0..reps {
        body();
    }
    let dt = start.elapsed().as_secs_f64();
    let gflops = flops_per_call * reps as f64 / dt / 1e9;
    let ns_per_pattern = dt / reps as f64 / n_pat as f64 * 1e9;
    (gflops, ns_per_pattern)
}

/// Deterministic pseudo-random positive values (likelihood-like magnitudes).
fn fill<T: Real>(seed: u64, len: usize) -> Vec<T> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            T::from_f64(0.05 + (x % 1000) as f64 / 1100.0)
        })
        .collect()
}

fn bench_precision<T: DispatchReal>(
    precision: &'static str,
    paths: &[DispatchKind],
    rows: &mut Vec<Row>,
) {
    let n_pat = if quick_mode() { 1024 } else { 4096 };
    for &s in &[4usize, 20, 61] {
        let sp = s.div_ceil(T::SIMD_LANES) * T::SIMD_LANES;
        let m1 = fill::<T>(1, s * sp);
        let m2 = fill::<T>(2, s * sp);
        let c1 = fill::<T>(3, n_pat * sp);
        let c2 = fill::<T>(4, n_pat * sp);
        let s1: Vec<u32> = (0..n_pat as u32).map(|i| i % s as u32).collect();
        let s2: Vec<u32> = (0..n_pat as u32).map(|i| (i * 7 + 3) % s as u32).collect();
        let mut dest = vec![T::ZERO; n_pat * sp];
        for &kind in paths {
            let table = T::dispatch(kind);
            let (gflops, ns) = measure(n_pat, pp_flops(s) * n_pat as f64, || {
                (table.partials_partials)(&mut dest, &c1, &c2, &m1, &m2, s, sp);
            });
            rows.push(Row {
                kernel: "partials_partials",
                states: s,
                precision,
                path: table.path,
                gflops,
                ns_per_pattern: ns,
            });
            let (gflops, ns) = measure(n_pat, sp_flops(s) * n_pat as f64, || {
                (table.states_partials)(&mut dest, &s1, &c2, &m1, &m2, s, sp);
            });
            rows.push(Row {
                kernel: "states_partials",
                states: s,
                precision,
                path: table.path,
                gflops,
                ns_per_pattern: ns,
            });
            let (gflops, ns) = measure(n_pat, ss_flops(s) * n_pat as f64, || {
                (table.states_states)(&mut dest, &s1, &s2, &m1, &m2, s, sp);
            });
            rows.push(Row {
                kernel: "states_states",
                states: s,
                precision,
                path: table.path,
                gflops,
                ns_per_pattern: ns,
            });
            // Rescaling: max pass + apply pass + finish, one category block.
            let scale_flops = (2 * sp * n_pat) as f64;
            let mut maxes = vec![T::ZERO; n_pat];
            let (gflops, ns) = measure(n_pat, scale_flops, || {
                maxes.iter_mut().for_each(|x| *x = T::ZERO);
                (table.rescale_max)(&dest, &mut maxes, sp);
                (table.rescale_apply)(&mut dest, &maxes, sp);
                kernels::rescale_finish(&mut maxes);
            });
            rows.push(Row {
                kernel: "rescale_patterns",
                states: s,
                precision,
                path: table.path,
                gflops,
                ns_per_pattern: ns,
            });
            // Root integration over one category.
            let freqs = fill::<T>(5, sp);
            let catw = vec![T::ONE];
            let pw = vec![T::ONE; n_pat];
            let mut site = vec![T::ZERO; n_pat];
            let root_flops = ((2 * s + 2) * n_pat) as f64;
            let (gflops, ns) = measure(n_pat, root_flops, || {
                std::hint::black_box((table.integrate_root)(
                    &mut site, &c1, &freqs, &catw, &pw, None, s, sp, n_pat, 0,
                ));
            });
            rows.push(Row {
                kernel: "integrate_root",
                states: s,
                precision,
                path: table.path,
                gflops,
                ns_per_pattern: ns,
            });
        }
    }
}

fn main() {
    let mut paths = vec![DispatchKind::Scalar, DispatchKind::Portable];
    if host_fma_available() {
        paths.push(DispatchKind::Avx2);
    } else {
        eprintln!("note: AVX2+FMA unavailable (or BEAGLE_FORCE_SCALAR set); skipping avx2 path");
    }

    let mut rows = Vec::new();
    bench_precision::<f64>("double", &paths, &mut rows);
    bench_precision::<f32>("single", &paths, &mut rows);

    println!("== kernel microbenchmarks ==");
    println!(
        "{:<18} {:>6} {:>7} {:>9} {:>10} {:>12}",
        "kernel", "states", "prec", "path", "GFLOPS", "ns/pattern"
    );
    for r in &rows {
        println!(
            "{:<18} {:>6} {:>7} {:>9} {:>10.2} {:>12.2}",
            r.kernel, r.states, r.precision, r.path, r.gflops, r.ns_per_pattern
        );
    }

    // Headline ratio from the acceptance criterion: AVX2 vs forced-scalar on
    // the s=61 double-precision partials×partials kernel.
    let find = |path: &str| {
        rows.iter()
            .find(|r| {
                r.kernel == "partials_partials"
                    && r.states == 61
                    && r.precision == "double"
                    && r.path == path
            })
            .map(|r| r.gflops)
    };
    if let (Some(avx2), Some(scalar)) = (find("avx2"), find("scalar")) {
        println!(
            "\ns=61 double pp: avx2 {avx2:.2} GFLOPS vs scalar {scalar:.2} GFLOPS ({:.2}x)",
            avx2 / scalar
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"kernels\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"states\": {}, \"precision\": \"{}\", \"path\": \"{}\", \"gflops\": {:.4}, \"ns_per_pattern\": {:.4}}}{}",
            r.kernel,
            r.states,
            r.precision,
            r.path,
            r.gflops,
            r.ns_per_pattern,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    std::fs::write(&out, json).expect("write BENCH_kernels.json");
    println!("\nwrote {out}");
}
