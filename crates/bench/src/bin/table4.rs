//! Table IV — OpenCL-GPU fused-multiply-add optimization.
//!
//! Throughput of the core partial-likelihoods kernel on the (simulated) AMD
//! Radeon R9 Nano with and without the `FP_FAST_FMA(F)` fast path, in single
//! and double precision at 10,000 and 100,000 unique patterns (nucleotide
//! model, as in the paper — Table IV's throughputs match Fig. 4's nucleotide
//! curve). Timing is modeled device time (see DESIGN.md §1).

use beagle_accel::{catalog, OpenClGpuFactory};
use beagle_core::manager::ImplementationFactory;
use beagle_core::Flags;
use genomictest::{benchmark, ModelKind, Problem, Scenario};

fn throughput(problem: &Problem, fma: bool, single: bool) -> f64 {
    let mut spec = catalog::radeon_r9_nano();
    spec.supports_fma = fma;
    let factory = OpenClGpuFactory::new(spec);
    let prefs = if single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    let mut inst = factory
        .create(&problem.config(), prefs, Flags::NONE)
        .expect("instance");
    benchmark(problem, inst.as_mut(), 2).gflops
}

fn main() {
    println!("== Table IV: OpenCL-GPU FMA optimization (simulated AMD Radeon R9 Nano) ==");
    println!("nucleotide model, 4 rate categories; device time from the roofline model\n");
    println!(
        "{:>9} {:>9} {:>14} {:>12} {:>8}",
        "precision", "patterns", "without FMA", "with FMA", "% gain"
    );
    let mut rows = Vec::new();
    for &patterns in &[10_000usize, 100_000] {
        let problem = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: 16,
            patterns,
            categories: 4,
            seed: 400 + patterns as u64,
        });
        for &single in &[true, false] {
            let without = throughput(&problem, false, single);
            let with = throughput(&problem, true, single);
            let gain = (with - without) / without * 100.0;
            println!(
                "{:>9} {:>9} {:>14.2} {:>12.2} {:>8.2}",
                if single { "single" } else { "double" },
                patterns,
                without,
                with,
                gain
            );
            rows.push(gain);
        }
    }

    println!("\n-- paper reference (Table IV) --");
    println!(
        "{:>9} {:>9} {:>14} {:>12} {:>8}",
        "precision", "patterns", "without FMA", "with FMA", "% gain"
    );
    for (prec, pat, wo, w, g) in [
        ("single", 10_000, 213.02, 216.87, 1.81),
        ("double", 10_000, 124.14, 136.88, 10.26),
        ("single", 100_000, 408.63, 411.43, 0.69),
        ("double", 100_000, 178.04, 199.23, 11.90),
    ] {
        println!("{prec:>9} {pat:>9} {wo:>14.2} {w:>12.2} {g:>8.2}");
    }
}
