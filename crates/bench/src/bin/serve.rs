//! Likelihood-service protocol overhead vs the in-process instance pool.
//!
//! Fixture: eight concurrent session streams (codon model, same fixture as
//! `BENCH_pool.json`) served two ways by identical 4-worker fleets of the
//! simulated GPU:
//!
//! * **pool** — clients submit straight to an in-process
//!   [`beagle_core::pool`] handle (function-call dispatch, zero copies);
//! * **serve** — clients go through the full WIRE-v1 stack: encode the
//!   session, write it to a loopback TCP socket, the server decodes it,
//!   multiplexes it onto an embedded pool of the same shape, and streams the
//!   result frame back.
//!
//! The headline number in `BENCH_serve.json` is the **protocol overhead**:
//! the increase in mean per-request wall latency from interposing the wire
//! (encode + syscalls + decode + the handler thread hop), as a percentage of
//! the in-process mean. It is reported, not asserted — on a loaded CI host
//! wall time measures the scheduler — but the run hard-asserts what the
//! service contract promises: every remote result is **bit-identical** to
//! the in-process result for the same session, at least four clients ran
//! concurrently, and the server drains gracefully with nothing lost.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use beagle_accel::catalog;
use beagle_core::{BufferId, InstanceSpec, Lane, PoolBuilder, SessionRequest};
use beagle_server::{Client, Endpoint, ServerBuilder};
use genomictest::{full_manager, ModelKind, Problem, Scenario};

const WORKERS: usize = 4;
const CLIENTS: usize = 8;
// The acceptance bar requires genuinely concurrent clients.
const _: () = assert!(CLIENTS >= 4);

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn gpu_name() -> String {
    format!("OpenCL-GPU ({})", catalog::radeon_r9_nano().name)
}

/// One self-contained session per client stream.
fn session(problem: &Problem) -> SessionRequest {
    let eig = problem.model.eigen();
    SessionRequest {
        tip_states: (0..problem.tree.taxon_count())
            .map(|t| problem.patterns.tip_states(t))
            .collect(),
        pattern_weights: problem.patterns.weights().to_vec(),
        category_rates: problem.rates.rates.clone(),
        category_weights: problem.rates.weights.clone(),
        frequencies: problem.model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: problem.tree.branch_assignments(),
        operations: problem.operations(false),
        root: BufferId(problem.tree.root()),
        scaled: false,
        deadline: None,
    }
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

fn latency_json(latencies: &mut [Duration]) -> String {
    latencies.sort();
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
        quantile(latencies, 0.50).as_micros(),
        quantile(latencies, 0.95).as_micros(),
        quantile(latencies, 0.99).as_micros()
    )
}

fn mean(latencies: &[Duration]) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    latencies.iter().sum::<Duration>() / latencies.len() as u32
}

fn lane_for(client: usize) -> Lane {
    if client.is_multiple_of(2) {
        Lane::Interactive
    } else {
        Lane::Batch
    }
}

fn main() {
    let rounds = if quick_mode() { 3 } else { 4 };
    let patterns = if quick_mode() { 400 } else { 800 };
    let problems: Vec<Problem> = (0..CLIENTS)
        .map(|i| {
            Problem::generate(&Scenario {
                model: ModelKind::Codon,
                taxa: 8,
                patterns,
                categories: 2,
                seed: 100 + i as u64,
            })
        })
        .collect();
    let sessions: Vec<SessionRequest> = problems.iter().map(session).collect();
    let manager = full_manager();
    // Memoization would collapse the repeated evaluations to zero device
    // time in both modes; disable it so both stacks do the same work.
    let spec = InstanceSpec::with_config(problems[0].config()).incremental(false);

    // -- Baseline: the in-process pool, function-call dispatch. ------------
    let pool = PoolBuilder::from_spec(spec.clone())
        .workers(WORKERS)
        .pin([gpu_name()])
        .queue_capacity(64)
        .build(&manager)
        .expect("pool builds");
    let handle = pool.handle();
    let pool_results: Vec<Mutex<Vec<f64>>> = (0..CLIENTS).map(|_| Mutex::new(Vec::new())).collect();
    let pool_latencies = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (client, results) in pool_results.iter().enumerate() {
            let handle = handle.clone();
            let session = sessions[client].clone();
            let latencies = &pool_latencies;
            scope.spawn(move || {
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let ticket = handle
                        .submit_session(lane_for(client), session.clone())
                        .expect("pool accepts sessions");
                    let lnl = ticket
                        .wait()
                        .expect("ticket resolves")
                        .expect("pool evaluation");
                    latencies.lock().unwrap().push(t0.elapsed());
                    results.lock().unwrap().push(lnl);
                }
            });
        }
    });
    let (pool_drained, _fleet) = pool.shutdown_drain(None);
    assert!(pool_drained, "in-process pool drains cleanly");

    // -- Remote: the same fleet behind the WIRE-v1 loopback server. --------
    let server = ServerBuilder::from_spec(spec)
        .workers(WORKERS)
        .pin([gpu_name()])
        .queue_capacity(64)
        .max_in_flight(4)
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let endpoint = Endpoint::Tcp(server.tcp_addr().expect("tcp listener").to_string());
    let serve_results: Vec<Mutex<Vec<f64>>> =
        (0..CLIENTS).map(|_| Mutex::new(Vec::new())).collect();
    let serve_latencies = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (client, results) in serve_results.iter().enumerate() {
            let endpoint = endpoint.clone();
            let session = &sessions[client];
            let latencies = &serve_latencies;
            scope.spawn(move || {
                let mut conn = Client::connect(endpoint).expect("client connects");
                for _ in 0..rounds {
                    let t0 = Instant::now();
                    let lnl = conn
                        .evaluate_patiently(session, lane_for(client), 64)
                        .expect("remote evaluation");
                    latencies.lock().unwrap().push(t0.elapsed());
                    results.lock().unwrap().push(lnl);
                }
            });
        }
    });
    let server_stats = server.stats_json();
    let drained = server.drain(None);

    // -- Correctness: every remote result bit-matches the in-process run. --
    let jobs = CLIENTS * rounds;
    let mut correct = true;
    for client in 0..CLIENTS {
        let pooled = pool_results[client].lock().unwrap();
        let served = serve_results[client].lock().unwrap();
        correct &= pooled.len() == rounds && served.len() == rounds;
        for (a, b) in pooled.iter().zip(served.iter()) {
            correct &= a.to_bits() == b.to_bits();
        }
    }

    let mut pool_lat = pool_latencies.into_inner().unwrap();
    let mut serve_lat = serve_latencies.into_inner().unwrap();
    let pool_mean = mean(&pool_lat);
    let serve_mean = mean(&serve_lat);
    let overhead_pct = if pool_mean.is_zero() {
        f64::NAN
    } else {
        (serve_mean.as_secs_f64() / pool_mean.as_secs_f64() - 1.0) * 100.0
    };

    println!(
        "== likelihood service: {CLIENTS} concurrent clients x {rounds} rounds on {WORKERS}x {} ==",
        gpu_name()
    );
    println!(
        "in-process mean wall: {:>10.1} us/request",
        pool_mean.as_secs_f64() * 1e6
    );
    println!(
        "remote mean wall:     {:>10.1} us/request",
        serve_mean.as_secs_f64() * 1e6
    );
    println!("protocol overhead:    {overhead_pct:>9.1} %  (wire encode/decode + syscalls + handler hop)");
    println!("correct:              {correct} (remote bit-identical to in-process pool)");
    println!("drained:              {drained}");

    assert!(correct, "the wire must never change a result");
    assert!(drained, "the server must drain gracefully");

    let mut json = String::from("{\n  \"benchmark\": \"serve\",\n");
    json.push_str(&format!(
        "  \"fixture\": {{\"implementation\": \"{}\", \"workers\": {WORKERS}, \"clients\": {CLIENTS}, \"rounds\": {rounds}, \"patterns\": {patterns}, \"transport\": \"tcp-loopback\"}},\n",
        gpu_name()
    ));
    json.push_str(&format!("  \"jobs\": {jobs},\n"));
    json.push_str(&format!(
        "  \"inprocess_mean_wall_us\": {},\n",
        pool_mean.as_micros()
    ));
    json.push_str(&format!(
        "  \"remote_mean_wall_us\": {},\n",
        serve_mean.as_micros()
    ));
    json.push_str(&format!(
        "  \"protocol_overhead_pct\": {overhead_pct:.2},\n"
    ));
    json.push_str(&format!(
        "  \"inprocess_wall_latency_us\": {},\n",
        latency_json(&mut pool_lat)
    ));
    json.push_str(&format!(
        "  \"remote_wall_latency_us\": {},\n",
        latency_json(&mut serve_lat)
    ));
    json.push_str(&format!("  \"server_stats\": {server_stats},\n"));
    json.push_str(&format!("  \"correct\": {correct},\n"));
    json.push_str(&format!("  \"drained\": {drained}\n"));
    json.push_str("}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".into());
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    println!("\nwrote {out}");
}
