//! Adaptive load balancing on a deliberately skewed device mix.
//!
//! Fixture: one codon analysis split across two simulated OpenCL GPUs
//! (Radeon R9 Nano vs FirePro S9170), with the Radeon throttled 4× by an
//! injected `Slowdown` fault (a thermal-limited or contended accelerator).
//! The codon model (61 states) is what makes the fixture balance-sensitive:
//! per-pattern kernel cost dwarfs the fixed per-launch overhead, so moving
//! patterns between devices actually moves the makespan. (On a small
//! nucleotide problem the modeled batch time is launch-dominated — ~420µs
//! fixed vs ~20ns/pattern — and no repartitioning can beat 2×.)
//! Two runs over the same batch sequence:
//!
//! * **static** — equal split, rebalancing disabled: every batch pays the
//!   throttled device's makespan.
//! * **adaptive** — the EWMA balancer measures per-child throughput,
//!   detects the skew, and migrates patterns toward the healthy device.
//!
//! The per-batch makespan is the partitioned instance's *simulated* device
//! time (children run concurrently, so it is the max over children), reset
//! before each batch. The headline number in `BENCH_balance.json` is the
//! steady-state improvement factor — the acceptance bar is ≥ 2×.
//!
//! Timing provenance: all rows are **modeled** device times (DESIGN.md §1),
//! which is what makes the skew deterministic and the bench host-independent.

use std::time::Duration;

use beagle_accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle_core::multi::{ChildSelection, PartitionedInstance};
use beagle_core::{BalancerConfig, BeagleInstance, Flags, InstanceSpec};
use genomictest::{full_manager_with_faults, ModelKind, Problem, Scenario};

const SLOWDOWN: f64 = 4.0;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn slow_name() -> String {
    format!("OpenCL-GPU ({})", catalog::radeon_r9_nano().name)
}

fn fast_name() -> String {
    format!("OpenCL-GPU ({})", catalog::firepro_s9170().name)
}

fn skewed_manager() -> std::sync::Arc<beagle_core::ImplementationManager> {
    let faults = FaultDirectory::new().with_plan(
        catalog::radeon_r9_nano().name,
        FaultPlan::new(7).with_fault(FaultKind::Slowdown(SLOWDOWN), false, Schedule::EveryN(1)),
    );
    full_manager_with_faults(&faults)
}

fn partitioned(
    manager: &std::sync::Arc<beagle_core::ImplementationManager>,
    problem: &Problem,
    adaptive: bool,
) -> PartitionedInstance {
    let selections = vec![
        ChildSelection::named(slow_name(), Flags::NONE, Flags::NONE),
        ChildSelection::named(fast_name(), Flags::NONE, Flags::NONE),
    ];
    let mut inst = PartitionedInstance::create_with_selections(
        manager,
        // The benchmark repeats identical evaluations; memoization would
        // skip them and collapse every makespan to zero.
        &InstanceSpec::with_config(problem.config()).incremental(false),
        selections,
        &[1.0, 1.0],
    )
    .expect("both simulated GPUs must exist");
    if adaptive {
        inst.enable_balancing(BalancerConfig {
            min_batches: 1,
            ..BalancerConfig::default()
        });
    }
    inst
}

/// Run `batches` full evaluations, returning the simulated makespan of each
/// batch and the final log-likelihood.
fn run(problem: &Problem, inst: &mut PartitionedInstance, batches: usize) -> (Vec<Duration>, f64) {
    problem.load(inst);
    let mut makespans = Vec::with_capacity(batches);
    let mut lnl = f64::NAN;
    for _ in 0..batches {
        inst.reset_simulated_time();
        lnl = problem.evaluate(inst, false);
        makespans.push(inst.simulated_time().expect("all children are simulated"));
    }
    (makespans, lnl)
}

/// Steady state: the mean of the second half of the batch sequence (the
/// adaptive run spends the first batches measuring and migrating).
fn steady(makespans: &[Duration]) -> f64 {
    let tail = &makespans[makespans.len() / 2..];
    tail.iter().map(Duration::as_secs_f64).sum::<f64>() / tail.len() as f64
}

fn json_list(makespans: &[Duration]) -> String {
    let items: Vec<String> = makespans.iter().map(|d| d.as_nanos().to_string()).collect();
    items.join(", ")
}

fn main() {
    let batches = if quick_mode() { 8 } else { 10 };
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Codon,
        taxa: 8,
        patterns: if quick_mode() { 2000 } else { 3000 },
        categories: 2,
        seed: 71,
    });
    let oracle = problem.oracle();
    let manager = skewed_manager();

    let mut static_inst = partitioned(&manager, &problem, false);
    let (static_ms, static_lnl) = run(&problem, &mut static_inst, batches);

    let mut adaptive_inst = partitioned(&manager, &problem, true);
    let (adaptive_ms, adaptive_lnl) = run(&problem, &mut adaptive_inst, batches);

    let static_steady = steady(&static_ms);
    let adaptive_steady = steady(&adaptive_ms);
    let improvement = static_steady / adaptive_steady;
    let rebalances = adaptive_inst.rebalance_count();
    let ranges: Vec<(usize, usize)> = (0..adaptive_inst.device_count())
        .map(|i| adaptive_inst.range(i))
        .collect();
    // Relative tolerance: a codon log-likelihood over thousands of patterns
    // is O(-1e4), so absolute 1e-6 would test rounding noise, not agreement.
    let tol = 1e-9 * oracle.abs().max(1.0);
    let correct = (static_lnl - oracle).abs() < tol && (adaptive_lnl - oracle).abs() < tol;

    println!(
        "== adaptive load balancing: {} throttled {SLOWDOWN}x vs {} ==",
        slow_name(),
        fast_name()
    );
    println!("{:<10} {:>14} {:>14}", "batch", "static", "adaptive");
    for (i, (s, a)) in static_ms.iter().zip(&adaptive_ms).enumerate() {
        println!(
            "{i:<10} {:>11.3} ms {:>11.3} ms",
            s.as_secs_f64() * 1e3,
            a.as_secs_f64() * 1e3
        );
    }
    println!(
        "steady-state makespan: static {:.3} ms, adaptive {:.3} ms",
        static_steady * 1e3,
        adaptive_steady * 1e3
    );
    println!("improvement:           {improvement:.2}x (acceptance bar: 2x)");
    println!("rebalances:            {rebalances}, final ranges {ranges:?}");
    println!("correct:               {correct} ({static_lnl} / {adaptive_lnl} vs oracle {oracle})");

    assert!(
        rebalances >= 1,
        "the throttled device must trigger a rebalance"
    );
    assert!(correct, "balancing must never change the answer");
    assert!(
        improvement >= 2.0,
        "adaptive steady-state makespan must beat the static split 2x, got {improvement:.2}x"
    );

    let mut json = String::from("{\n  \"benchmark\": \"balance\",\n");
    json.push_str(&format!(
        "  \"fixture\": {{\"slow_device\": \"{}\", \"slowdown\": {SLOWDOWN}, \"fast_device\": \"{}\", \"patterns\": {}, \"batches\": {batches}}},\n",
        slow_name(),
        fast_name(),
        problem.patterns.pattern_count()
    ));
    json.push_str(&format!(
        "  \"static_makespans_ns\": [{}],\n",
        json_list(&static_ms)
    ));
    json.push_str(&format!(
        "  \"adaptive_makespans_ns\": [{}],\n",
        json_list(&adaptive_ms)
    ));
    json.push_str(&format!(
        "  \"static_steady_ns\": {:.0}, \"adaptive_steady_ns\": {:.0},\n",
        static_steady * 1e9,
        adaptive_steady * 1e9
    ));
    json.push_str(&format!("  \"improvement\": {improvement:.4},\n"));
    json.push_str(&format!("  \"rebalances\": {rebalances},\n"));
    json.push_str(&format!(
        "  \"final_ranges\": [{}],\n",
        ranges
            .iter()
            .map(|(a, b)| format!("[{a}, {b}]"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"static_lnl\": {static_lnl}, \"adaptive_lnl\": {adaptive_lnl}, \"oracle\": {oracle}, \"correct\": {correct}\n"
    ));
    json.push_str("}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_balance.json".into());
    std::fs::write(&out, json).expect("write BENCH_balance.json");
    println!("\nwrote {out}");
}
