//! Figure 5 — multicore CPU performance scaling.
//!
//! Throughput of the nucleotide partial-likelihoods function at 10⁴ unique
//! patterns as the thread count grows, for the C++-threads (thread-pool)
//! model and the OpenCL-x86 implementation (thread restriction standing in
//! for OpenCL device fission).
//!
//! Measured on this host up to its hardware-thread count, and modeled for
//! the paper's 56-thread dual Xeon E5-2680v4 (where both curves saturate
//! around 27 threads — memory bandwidth).

use beagle_accel::OpenClX86Factory;
use beagle_bench::cpu_model::CpuModel;
use beagle_bench::quick_mode;
use beagle_core::manager::ImplementationFactory;
use beagle_core::Flags;
use beagle_cpu::{CpuFactory, ThreadingModel};
use genomictest::{benchmark, ModelKind, Problem, Scenario};

fn main() {
    let patterns = 10_000;
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns,
        categories: 4,
        seed: 700,
    });
    let reps = if quick_mode() { 2 } else { 5 };
    let host = beagle_cpu::host_threads();

    println!("== Figure 5: multicore scaling, nucleotide, {patterns} patterns ==\n");
    println!("-- measured on this host ({host} hardware thread(s)) --");
    println!(
        "{:>8} {:>14} {:>14}",
        "threads", "C++ threads", "OpenCL-x86"
    );
    let mut t = 1;
    while t <= host {
        let pool_factory = CpuFactory::with_threads(ThreadingModel::ThreadPool, false, t);
        let mut inst = pool_factory
            .create(&problem.config(), Flags::PRECISION_SINGLE, Flags::NONE)
            .expect("pool instance");
        let threads_gflops = benchmark(&problem, inst.as_mut(), reps).gflops;

        let x86_factory = OpenClX86Factory::with_threads(t, 256);
        let mut inst = x86_factory
            .create(&problem.config(), Flags::PRECISION_SINGLE, Flags::NONE)
            .expect("x86 instance");
        let x86_gflops = benchmark(&problem, inst.as_mut(), reps).gflops;

        println!("{t:>8} {threads_gflops:>14.2} {x86_gflops:>14.2}");
        t *= 2;
    }

    println!("\n-- modeled for dual Xeon E5-2680v4 (2 x 14 cores, 56 threads) --");
    println!(
        "{:>8} {:>14} {:>14}",
        "threads", "C++ threads", "OpenCL-x86"
    );
    let model = CpuModel::dual_xeon_e5_2680v4();
    for t in [1usize, 2, 4, 8, 12, 16, 20, 23, 27, 34, 45, 56] {
        // The OpenCL-x86 kernel on the same cores runs slightly ahead of the
        // thread-pool at scale in the paper (better vectorized inner loop);
        // model it with a small constant factor.
        let pool = model.pool_gflops(t, 16, patterns, 4, 4);
        let x86 = pool * 1.12;
        println!("{t:>8} {pool:>14.2} {x86:>14.2}");
    }
    println!(
        "\npaper: both implementations saturate around 27 threads (~310 GFLOPS),\n\
         suggesting memory-bandwidth limits (§VIII-B)."
    );
}
