//! Epoch-based incremental computation — the MCMC fast path.
//!
//! The paper's workloads are MCMC-driven: each proposal perturbs one branch
//! length, yet a naive client refreshes every transition matrix and every
//! partial on every move. This binary quantifies what the incremental layer
//! (`beagle_core::memo` plus the engine-side dirty tracking in
//! `beagle_mcmc::engine`) buys on exactly that access pattern: a
//! single-branch-update sweep over a large tree, evaluated once with
//! incremental computation on and once with it forced off.
//!
//! Acceptance: the incremental trace must be **bit-identical** to the
//! always-recompute trace, and at least 5x faster per evaluation.
//!
//! Timing provenance: **measured** wall-clock on the CPU-serial back-end
//! (real kernels, no device model).

use std::time::{Duration, Instant};

use beagle_core::memo::incremental_disabled_by_env;
use beagle_mcmc::{BeagleEngine, LikelihoodEngine};
use beagle_phylo::models::nucleotide::hky85;
use beagle_phylo::simulate::simulate_alignment;
use beagle_phylo::{ReversibleModel, SitePatterns, SiteRates, Tree};
use genomictest::full_manager;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0")
}

struct Case {
    tree: Tree,
    model: ReversibleModel,
    rates: SiteRates,
    patterns: SitePatterns,
    taxa: usize,
}

fn case(taxa: usize, sites: usize) -> Case {
    let mut rng = SmallRng::seed_from_u64(2017);
    let tree = Tree::random(taxa, 0.12, &mut rng);
    let model = hky85(2.5, &[0.3, 0.2, 0.25, 0.25]);
    let rates = SiteRates::discrete_gamma(0.5, 4);
    let aln = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    Case {
        tree,
        model,
        rates,
        patterns,
        taxa,
    }
}

fn engine(case: &Case, incremental: bool) -> BeagleEngine {
    let config = beagle_core::InstanceConfig::for_tree(
        case.taxa,
        case.patterns.pattern_count(),
        4,
        case.rates.category_count(),
    );
    let inst = beagle_core::InstanceSpec::with_config(config)
        .named("CPU-serial")
        .instantiate(&full_manager())
        .expect("CPU-serial exists");
    let mut eng = BeagleEngine::new(inst, case.patterns.clone(), case.rates.clone(), false);
    eng.set_incremental(incremental);
    eng
}

/// Run the single-branch-update sweep: iteration `i` scales one branch,
/// then the tree is re-evaluated. Returns (lnL bit trace, wall time).
fn sweep(case: &Case, eng: &mut BeagleEngine, iters: usize) -> (Vec<u64>, Duration) {
    let mut tree = case.tree.clone();
    // Warm-up: the first evaluation is a full refresh for both engines.
    eng.log_likelihood(&tree, &case.model);
    let n_branch = 2 * case.taxa - 2;
    let start = Instant::now();
    let mut trace = Vec::with_capacity(iters);
    for i in 0..iters {
        let node = (i * 7 + 3) % n_branch;
        tree.node_mut(node).branch_length *= 1.0 + 0.01 * ((i % 13) as f64 + 1.0);
        trace.push(eng.log_likelihood(&tree, &case.model).to_bits());
    }
    (trace, start.elapsed())
}

fn main() {
    let (taxa, sites, iters) = if quick_mode() {
        (96, 1000, 40)
    } else {
        (192, 4000, 200)
    };
    let case = case(taxa, sites);
    let disabled_env = incremental_disabled_by_env();

    let mut full = engine(&case, false);
    let (full_trace, full_time) = sweep(&case, &mut full, iters);

    let mut inc = engine(&case, true);
    let (inc_trace, inc_time) = sweep(&case, &mut inc, iters);

    let bit_identical = full_trace == inc_trace;
    let speedup = full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-12);
    let stats = inc.memo_stats().unwrap_or_default();

    println!("== incremental computation: single-branch MCMC sweep ==");
    println!("({taxa} taxa, {sites} sites, {iters} single-branch updates, CPU-serial, measured)");
    println!();
    println!(
        "full refresh:  {:>10.3} ms total, {:>8.3} ms/eval",
        full_time.as_secs_f64() * 1e3,
        full_time.as_secs_f64() * 1e3 / iters as f64
    );
    println!(
        "incremental:   {:>10.3} ms total, {:>8.3} ms/eval",
        inc_time.as_secs_f64() * 1e3,
        inc_time.as_secs_f64() * 1e3 / iters as f64
    );
    println!("speedup:       {speedup:.2}x (acceptance bar: 5x)");
    println!("bit-identical: {bit_identical}");
    println!(
        "memo counters: ops {}:{} (exec:skip), matrices {}:{}, integrations {}:{}, sets deduped {}",
        stats.ops_executed,
        stats.ops_skipped,
        stats.matrices_computed,
        stats.matrices_skipped,
        stats.integrations_computed,
        stats.integrations_skipped,
        stats.sets_deduped
    );
    if disabled_env {
        println!(
            "BEAGLE_INCREMENTAL_DISABLE is set: both runs are full refreshes (parity check only)"
        );
    }

    assert!(
        bit_identical,
        "incremental lnL trace diverged from the always-recompute trace"
    );
    if !disabled_env {
        assert!(
            speedup >= 5.0,
            "incremental sweep must be at least 5x faster than full refresh, got {speedup:.2}x"
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"incremental\",\n");
    json.push_str(&format!(
        "  \"fixture\": {{\"taxa\": {taxa}, \"sites\": {sites}, \"patterns\": {}, \"iterations\": {iters}, \"backend\": \"CPU-serial\", \"disable_env\": {disabled_env}}},\n",
        case.patterns.pattern_count()
    ));
    json.push_str(&format!(
        "  \"full_refresh_ns\": {}, \"incremental_ns\": {},\n",
        full_time.as_nanos(),
        inc_time.as_nanos()
    ));
    json.push_str(&format!("  \"speedup\": {speedup:.4},\n"));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!(
        "  \"memo\": {{\"ops_executed\": {}, \"ops_skipped\": {}, \"matrices_computed\": {}, \"matrices_skipped\": {}, \"integrations_computed\": {}, \"integrations_skipped\": {}, \"sets_deduped\": {}, \"scale_pairs_skipped\": {}}}\n",
        stats.ops_executed,
        stats.ops_skipped,
        stats.matrices_computed,
        stats.matrices_skipped,
        stats.integrations_computed,
        stats.integrations_skipped,
        stats.sets_deduped,
        stats.scale_pairs_skipped
    ));
    json.push_str("}\n");
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_incremental.json".into());
    std::fs::write(&out, json).expect("write BENCH_incremental.json");
    println!("\nwrote {out}");
}
