//! Tables I and II: the (simulated) system and device inventory, plus the
//! BEAGLE-RS resource list as a client program would see it.

use beagle_accel::{catalog, cuda::CudaDriver, opencl::IcdRegistry};
use genomictest::full_manager;

fn main() {
    println!("== Table II: GPU / device specifications (simulated) ==");
    println!(
        "{:<42} {:>7} {:>9} {:>12} {:>12} {:>10}",
        "device", "cores", "mem (GB)", "BW (GB/s)", "SP GFLOPS", "LDS (KiB)"
    );
    for d in catalog::all() {
        println!(
            "{:<42} {:>7} {:>9} {:>12} {:>12} {:>10}",
            d.name, d.cores, d.memory_gb, d.bandwidth_gbs, d.sp_gflops, d.local_mem_kib
        );
    }

    println!("\n== Table I: framework drivers present on the simulated system ==");
    match CudaDriver::probe_default() {
        Some(drv) => {
            println!("CUDA release         : {}", drv.version);
            for d in drv.devices() {
                println!("  CUDA device        : {}", d.name);
            }
        }
        None => println!("CUDA release         : not available (no NVIDIA device)"),
    }
    for drv in IcdRegistry::probe_default().drivers() {
        println!("OpenCL driver        : {}", drv.name);
        for d in &drv.devices {
            println!("  OpenCL device      : {}", d.name);
        }
    }

    println!("\n== BEAGLE-RS resource list (implementation manager) ==");
    let m = full_manager();
    for (name, res) in m.implementation_names().into_iter().zip(m.resource_list()) {
        println!("{:<42} on {}", name, res.name);
    }
}
