//! Analytic model of multicore-CPU throughput for the paper's host systems.
//!
//! This benchmark host has a single hardware thread, so the paper's
//! CPU-threading results (Table III, Fig. 5, Fig. 6 CPU rows) cannot be
//! *measured* here. Following the substitution rule in DESIGN.md §1, they
//! are additionally *modeled*, with the same philosophy as the GPU roofline
//! in `beagle-accel::perf`: a small mechanistic model plus fitted constants,
//! stated openly. Fitted against Table III and Fig. 5; band-level agreement
//! (ordering and rough magnitude), not digit matching.
//!
//! Per-traversal time model (`ops` = taxa − 1 partials operations):
//!
//! ```text
//! t(serial)  = flops / serial_rate
//! t(pool)    = ops·DISPATCH + flops / parallel_rate
//! t(create)  = t(pool) + threads·SPAWN          (threads made per call)
//! t(futures) = ops·FUTURE_SPAWN + flops / (serial_rate · min(ops/levels, threads))
//!
//! serial_rate   = SERIAL_BASE · state_factor / cache_penalty(working set)
//! parallel_rate = min(serial_rate · eff(threads) · chunk_ramp, BW_CAP)
//! ```
//!
//! * `BW_CAP` makes Fig. 5 saturate near 27 threads (§VIII-B: "suggesting
//!   memory bandwidth limitations").
//! * `cache_penalty` reproduces Table III's serial fall-off from 35.8 GFLOPS
//!   (8 tips) to ~13.6 (128 tips): more tips → more partials buffers → the
//!   working set leaves L3.
//! * `ops/levels` is the *operation-level* parallelism available to the
//!   futures model — topology-limited, which is why futures gains grow with
//!   tip count in Table III (1.06× at 8 tips, ~5× at 64).

use beagle_core::ops::{dependency_levels, Operation};

/// Pool task-dispatch + barrier cost per operation, µs.
const DISPATCH_US: f64 = 2.0;
/// Thread spawn+join cost per thread for the thread-create model, µs.
const SPAWN_US: f64 = 10.0;
/// Future/task spawn cost per operation for the futures model, µs.
const FUTURE_SPAWN_US: f64 = 30.0;

/// A modeled multicore host.
#[derive(Clone, Copy, Debug)]
pub struct CpuModel {
    /// Physical cores.
    pub physical_cores: usize,
    /// Hardware threads (with SMT).
    pub hardware_threads: usize,
    /// Single-core single-precision GFLOPS of the compiler-vectorized
    /// nucleotide kernel (fitted: Table III serial at 8 tips = 35.8).
    pub serial_base_sp: f64,
    /// Memory-bandwidth throughput ceiling in GFLOPS (fitted: Fig. 5
    /// saturation ≈310 GFLOPS on the dual Xeon).
    pub bw_cap_sp: f64,
    /// L3 cache (one socket, the one a serial run lives on), bytes.
    pub l3_bytes: f64,
}

impl CpuModel {
    /// The paper's system 2: dual Intel Xeon E5-2680v4.
    pub fn dual_xeon_e5_2680v4() -> Self {
        CpuModel {
            physical_cores: 28,
            hardware_threads: 56,
            serial_base_sp: 35.8,
            bw_cap_sp: 310.0,
            l3_bytes: 35e6,
        }
    }

    /// Intel Xeon Phi 7210 (Knights Landing) as a self-boot CPU: weak
    /// single-thread performance, many hardware threads, high-bandwidth
    /// MCDRAM, large cross-thread synchronization cost — which is what makes
    /// it weak below 10⁴ patterns in Fig. 4.
    pub fn xeon_phi_7210() -> Self {
        CpuModel {
            physical_cores: 64,
            hardware_threads: 256,
            serial_base_sp: 2.2,
            bw_cap_sp: 230.0,
            l3_bytes: 32e6,
        }
    }

    /// Effective traversal flops for (tips, patterns, states, cats).
    fn flops(&self, tips: usize, patterns: usize, states: usize, cats: usize) -> f64 {
        let s = states as f64;
        (tips - 1) as f64 * cats as f64 * patterns as f64 * s * (4.0 * s + 2.0)
    }

    fn working_set(&self, tips: usize, patterns: usize, states: usize, cats: usize) -> f64 {
        ((2 * tips - 1) * cats * patterns * states * 4) as f64
    }

    /// Cache penalty ≥ 1 once the working set spills out of L3; saturates
    /// because streaming prefetch bounds the damage (fitted to the Table III
    /// serial column).
    fn cache_penalty(&self, working_set: f64) -> f64 {
        if working_set <= self.l3_bytes {
            1.0
        } else {
            (working_set / self.l3_bytes).powf(1.3).min(2.7)
        }
    }

    /// Modeled serial rate in GFLOPS.
    pub fn serial_gflops(&self, tips: usize, patterns: usize, states: usize, cats: usize) -> f64 {
        let ws = self.working_set(tips, patterns, states, cats);
        let state_factor = if states <= 4 { 1.0 } else { 0.55 };
        self.serial_base_sp * state_factor / self.cache_penalty(ws)
    }

    /// Sub-linear thread-efficiency curve: shared memory bandwidth and NUMA
    /// contention grow with thread count, so throughput follows ~t^0.65
    /// (fitted so the Fig. 5 curves reach the ~310 GFLOPS bandwidth ceiling
    /// at ≈27 threads, as the paper reports).
    fn eff_threads(&self, threads: usize) -> f64 {
        let t = threads.min(self.hardware_threads) as f64;
        t.powf(0.65)
    }

    fn chunk_ramp(&self, patterns: usize, threads: usize) -> f64 {
        let per_thread = patterns as f64 / threads.max(1) as f64;
        per_thread / (per_thread + 64.0)
    }

    fn parallel_rate(
        &self,
        threads: usize,
        tips: usize,
        patterns: usize,
        states: usize,
        cats: usize,
    ) -> f64 {
        let serial = self.serial_gflops(tips, patterns, states, cats);
        // High-state (codon) kernels are compute-bound — arithmetic
        // intensity grows with the state count — so they scale nearly
        // linearly to the physical core count instead of hitting the
        // bandwidth ceiling (which is why the paper's OpenCL-x86 codon
        // result reaches ~660 GFLOPS, half the R9 Nano).
        let compute_bound = states > 20;
        let t = threads.min(self.hardware_threads) as f64;
        let (eff, cap) = if compute_bound {
            (t.powf(0.9), self.physical_cores as f64 * serial * 1.2)
        } else {
            (self.eff_threads(threads), self.bw_cap_sp)
        };
        (serial * eff * self.chunk_ramp(patterns, threads))
            .min(cap)
            .max(serial)
    }

    /// Modeled thread-pool throughput in GFLOPS.
    pub fn pool_gflops(
        &self,
        threads: usize,
        tips: usize,
        patterns: usize,
        states: usize,
        cats: usize,
    ) -> f64 {
        if patterns < 512 || threads <= 1 {
            return self.serial_gflops(tips, patterns, states, cats);
        }
        let flops = self.flops(tips, patterns, states, cats);
        let ops = (tips - 1) as f64;
        let t_us = ops * DISPATCH_US
            + flops / (self.parallel_rate(threads, tips, patterns, states, cats) * 1e3);
        flops / (t_us * 1e3)
    }

    /// Modeled thread-create throughput: pool time plus per-call spawns.
    pub fn create_gflops(
        &self,
        threads: usize,
        tips: usize,
        patterns: usize,
        states: usize,
        cats: usize,
    ) -> f64 {
        if patterns < 512 || threads <= 1 {
            return self.serial_gflops(tips, patterns, states, cats);
        }
        let flops = self.flops(tips, patterns, states, cats);
        let pool = self.pool_gflops(threads, tips, patterns, states, cats);
        let t_us = flops / (pool * 1e3) + threads as f64 * SPAWN_US;
        flops / (t_us * 1e3)
    }

    /// Modeled futures throughput: operation-level parallelism only.
    pub fn futures_gflops(
        &self,
        operations: &[Operation],
        tips: usize,
        patterns: usize,
        states: usize,
        cats: usize,
    ) -> f64 {
        let flops = self.flops(tips, patterns, states, cats);
        let levels = dependency_levels(operations).len().max(1);
        let parallelism =
            (operations.len() as f64 / levels as f64).clamp(1.0, self.hardware_threads as f64);
        let serial = self.serial_gflops(tips, patterns, states, cats);
        let t_us = operations.len() as f64 * FUTURE_SPAWN_US + flops / (serial * parallelism * 1e3);
        flops / (t_us * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use beagle_phylo::Tree;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ops_for(tips: usize) -> Vec<Operation> {
        let mut rng = SmallRng::seed_from_u64(33);
        let tree = Tree::random(tips, 0.1, &mut rng);
        tree.operation_schedule()
            .iter()
            .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
            .collect()
    }

    #[test]
    fn serial_matches_table_three_scale() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        // Paper Table III serial column: 35.82 / 35.47 / 14.95 / 13.62.
        let s8 = m.serial_gflops(8, 10_000, 4, 4);
        let s128 = m.serial_gflops(128, 10_000, 4, 4);
        assert!((s8 - 35.8).abs() < 2.0, "8 tips: {s8}");
        assert!((s128 - 13.6).abs() / 13.6 < 0.35, "128 tips: {s128}");
        assert!(s8 > s128);
    }

    #[test]
    fn pool_speedups_in_paper_band() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        // Paper: pool speedup over serial = 5.4 / 7.3 / 14.5 at 8/16/64 tips.
        for (tips, lo, hi) in [(8, 2.5, 9.0), (16, 3.0, 11.0), (64, 6.0, 22.0)] {
            let s = m.serial_gflops(tips, 10_000, 4, 4);
            let p = m.pool_gflops(56, tips, 10_000, 4, 4);
            let speedup = p / s;
            assert!(speedup > lo && speedup < hi, "tips {tips}: {speedup}");
        }
    }

    #[test]
    fn create_slower_than_pool() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        for tips in [8usize, 16, 64, 128] {
            let pool = m.pool_gflops(56, tips, 10_000, 4, 4);
            let create = m.create_gflops(56, tips, 10_000, 4, 4);
            assert!(create < pool, "tips {tips}: create {create} vs pool {pool}");
            assert!(create > 0.1 * pool, "create should not collapse: {create}");
        }
    }

    #[test]
    fn futures_limited_by_tree_shape() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        let f8 = m.futures_gflops(&ops_for(8), 8, 10_000, 4, 4);
        let f64t = m.futures_gflops(&ops_for(64), 64, 10_000, 4, 4);
        let s8 = m.serial_gflops(8, 10_000, 4, 4);
        let s64 = m.serial_gflops(64, 10_000, 4, 4);
        // More tips → more independent operations → larger futures speedup,
        // the Table III pattern (≈1.06× at 8 tips, ≈5.3× at 64).
        assert!(f8 / s8 < f64t / s64, "{} vs {}", f8 / s8, f64t / s64);
    }

    #[test]
    fn scaling_saturates_around_bandwidth_cap() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        let t27 = m.pool_gflops(27, 16, 10_000, 4, 4);
        let t56 = m.pool_gflops(56, 16, 10_000, 4, 4);
        // Fig. 5: saturation ≈27 threads; beyond that gains are small.
        assert!(t56 / t27 < 1.4, "{t27} → {t56}");
        let mut prev = 0.0;
        for t in 1..=27 {
            let g = m.pool_gflops(t, 16, 10_000, 4, 4);
            assert!(g >= prev * 0.95, "near-monotone up to saturation");
            prev = g;
        }
    }

    #[test]
    fn below_threshold_threading_is_serial() {
        let m = CpuModel::dual_xeon_e5_2680v4();
        let s = m.serial_gflops(8, 256, 4, 4);
        assert_eq!(m.pool_gflops(56, 8, 256, 4, 4), s);
        assert_eq!(m.create_gflops(56, 8, 256, 4, 4), s);
    }

    #[test]
    fn phi_weak_at_small_problems() {
        let phi = CpuModel::xeon_phi_7210();
        let small = phi.create_gflops(256, 8, 1_000, 4, 4);
        let large = phi.create_gflops(256, 8, 100_000, 4, 4);
        assert!(
            small < large * 0.5,
            "Phi must ramp slowly: {small} vs {large}"
        );
    }
}
