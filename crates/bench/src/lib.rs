//! Shared machinery for the per-table / per-figure benchmark binaries.
//!
//! Two kinds of numbers appear in the harness output, always labelled:
//!
//! * **measured** — real wall-clock execution on this host (all CPU
//!   implementations, OpenCL-x86);
//! * **modeled** — the roofline device model for the simulated GPUs, plus
//!   the multicore-CPU model in [`cpu_model`] used when this host has fewer
//!   hardware threads than the paper's dual Xeon E5-2680v4 (so thread
//!   scaling cannot manifest locally — see DESIGN.md §1).

pub mod cpu_model;

use beagle_core::{BeagleInstance, Flags, InstanceSpec};
use genomictest::{benchmark, full_manager, Problem, ThroughputReport};

/// Create an instance of the exactly-named implementation for `problem`.
pub fn instance_by_name(
    problem: &Problem,
    name: &str,
    single: bool,
) -> Option<Box<dyn BeagleInstance>> {
    let precision = if single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    InstanceSpec::with_config(problem.config())
        .prefer(precision)
        .named(name)
        .instantiate(&full_manager())
        .ok()
}

/// Benchmark one named implementation; `None` if it cannot run the problem.
pub fn bench_named(
    problem: &Problem,
    name: &str,
    single: bool,
    reps: usize,
) -> Option<ThroughputReport> {
    let mut inst = instance_by_name(problem, name, single)?;
    Some(benchmark(problem, inst.as_mut(), reps))
}

/// Repetition count that keeps a sweep point under roughly a second of
/// functional execution: ~`budget_flops` per measurement.
pub fn reps_for(problem: &Problem, budget_flops: f64) -> usize {
    ((budget_flops / problem.traversal_flops()) as usize).clamp(1, 50)
}

/// `--quick` / `--full` handling shared by the harness binaries.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// True when `--paper` is passed: use the paper's full problem sizes.
pub fn paper_mode() -> bool {
    std::env::args().any(|a| a == "--paper")
}

/// Format a GFLOPS cell.
pub fn cell(x: Option<f64>) -> String {
    match x {
        Some(v) if v >= 100.0 => format!("{v:>10.1}"),
        Some(v) => format!("{v:>10.2}"),
        None => format!("{:>10}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomictest::{ModelKind, Scenario};

    #[test]
    fn bench_named_runs_serial() {
        let p = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: 5,
            patterns: 64,
            categories: 1,
            seed: 2,
        });
        let r = bench_named(&p, "CPU-serial", false, 1).expect("serial exists");
        assert!(r.gflops > 0.0);
        assert!(bench_named(&p, "no-such-impl", false, 1).is_none());
    }

    #[test]
    fn reps_scale_inversely_with_problem_size() {
        let small = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: 4,
            patterns: 32,
            categories: 1,
            seed: 3,
        });
        let large = Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: 16,
            patterns: 4096,
            categories: 4,
            seed: 3,
        });
        assert!(reps_for(&small, 1e8) >= reps_for(&large, 1e8));
    }
}
