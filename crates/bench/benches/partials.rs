//! Criterion microbenchmarks of the partial-likelihoods kernels: scalar vs
//! vectorized, by state count and precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beagle_cpu::{kernels, vector};

fn bench_partials(c: &mut Criterion) {
    let mut group = c.benchmark_group("partials_partials");
    for &(s, patterns) in &[(4usize, 4096usize), (20, 1024), (61, 256)] {
        let len = patterns * s;
        let c1: Vec<f64> = (0..len).map(|i| 0.1 + (i % 13) as f64 * 0.01).collect();
        let c2: Vec<f64> = (0..len).map(|i| 0.2 + (i % 7) as f64 * 0.02).collect();
        let m1: Vec<f64> = (0..s * s).map(|i| 0.01 * (1 + i % 9) as f64).collect();
        let m2 = m1.clone();
        let mut dest = vec![0.0f64; len];
        let flops = (patterns * s * (4 * s + 2)) as u64;
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::new("scalar", s), &s, |b, &s| {
            b.iter(|| kernels::partials_partials(&mut dest, &c1, &c2, &m1, &m2, s, s))
        });
        if s == 4 {
            group.bench_with_input(BenchmarkId::new("vector4", s), &s, |b, _| {
                b.iter(|| vector::partials_partials_4(&mut dest, &c1, &c2, &m1, &m2, 4))
            });
        }
    }
    group.finish();
}

fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("precision");
    let s = 4;
    let patterns = 4096;
    let len = patterns * s;
    let c1d: Vec<f64> = (0..len).map(|i| 0.1 + (i % 13) as f64 * 0.01).collect();
    let m1d: Vec<f64> = (0..s * s).map(|i| 0.01 * (1 + i % 9) as f64).collect();
    let c1s: Vec<f32> = c1d.iter().map(|&x| x as f32).collect();
    let m1s: Vec<f32> = m1d.iter().map(|&x| x as f32).collect();
    let mut dd = vec![0.0f64; len];
    let mut ds = vec![0.0f32; len];
    group.bench_function("double", |b| {
        b.iter(|| vector::partials_partials_4(&mut dd, &c1d, &c1d, &m1d, &m1d, 4))
    });
    group.bench_function("single", |b| {
        b.iter(|| vector::partials_partials_4(&mut ds, &c1s, &c1s, &m1s, &m1s, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_partials, bench_precision);
criterion_main!(benches);
