//! Ablation: what does the shared-kernel Dialect abstraction cost?
//!
//! Five bars:
//! * `generic_cuda_dialect` / `generic_opencl_dialect` — the one shared
//!   kernel, instantiated for each framework. **These two match within
//!   noise**, which is the paper's code-sharing claim: one kernel source,
//!   two frameworks, no penalty for either.
//! * `monomorphic_same_structure` — identical work-item decomposition
//!   (group loop, item = pattern·s + state, padding guard, local staging)
//!   with the `BufferView` runtime representation stripped. The gap to the
//!   generic bars (~1.7× on this host) is the cost of *simulating* the
//!   dialect at runtime; on real hardware the dialect is a preprocessor
//!   choice with zero runtime cost, so this is simulation overhead, not
//!   architecture cost.
//! * `pattern_major_reference` — no work-item structure at all; the upper
//!   bound a CPU-style kernel reaches, isolating the cost of faithful GPU
//!   work-item semantics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use beagle_accel::device::catalog;
use beagle_accel::dialect::{CudaDialect, OpenClDialect};
use beagle_accel::grid::plan_gpu;
use beagle_accel::kernels::gpu::{partials_kernel, PartialsArgs};
use beagle_accel::kernels::Operand;

/// Hand-monomorphized reference with the SAME work-item decomposition as the
/// shared kernel (group loop, item = local_pattern·s + state, padding guard,
/// local-memory staging) but no `Dialect` generics and no `BufferView` —
/// so the only variable left is the abstraction itself.
#[allow(clippy::too_many_arguments)]
fn monomorphic_kernel(
    dest: &mut [f64],
    c1: &[f64],
    c2: &[f64],
    m1: &[f64],
    m2: &[f64],
    s: usize,
    patterns: usize,
    categories: usize,
    patterns_per_group: usize,
) {
    let groups = patterns.div_ceil(patterns_per_group);
    let items_per_group = patterns_per_group * s;
    let mut local_m1 = vec![0.0; s * s];
    let mut local_m2 = vec![0.0; s * s];
    for cat in 0..categories {
        local_m1.copy_from_slice(&m1[cat * s * s..(cat + 1) * s * s]);
        local_m2.copy_from_slice(&m2[cat * s * s..(cat + 1) * s * s]);
        for group in 0..groups {
            let first_pattern = group * patterns_per_group;
            for item in 0..items_per_group {
                let pattern = first_pattern + item / s;
                let i = item % s;
                if pattern >= patterns {
                    continue;
                }
                let base = (cat * patterns + pattern) * s;
                let row1 = &local_m1[i * s..(i + 1) * s];
                let row2 = &local_m2[i * s..(i + 1) * s];
                let a = &c1[base..base + s];
                let b = &c2[base..base + s];
                let mut sum1 = 0.0;
                let mut sum2 = 0.0;
                for j in 0..s {
                    sum1 = row1[j].mul_add(a[j], sum1);
                    sum2 = row2[j].mul_add(b[j], sum2);
                }
                dest[base + i] = sum1 * sum2;
            }
        }
    }
}

/// A pattern-major loop with no work-item structure at all: the upper bound
/// a CPU-style kernel reaches on this host (the gap to the bars above is the
/// cost of simulating GPU work-item semantics, not of the dialect).
#[allow(clippy::too_many_arguments)]
fn pattern_major_reference(
    dest: &mut [f64],
    c1: &[f64],
    c2: &[f64],
    m1: &[f64],
    m2: &[f64],
    s: usize,
    patterns: usize,
    categories: usize,
) {
    for cat in 0..categories {
        let m1c = &m1[cat * s * s..(cat + 1) * s * s];
        let m2c = &m2[cat * s * s..(cat + 1) * s * s];
        for p in 0..patterns {
            let base = (cat * patterns + p) * s;
            for i in 0..s {
                let mut sum1 = 0.0;
                let mut sum2 = 0.0;
                for j in 0..s {
                    sum1 = m1c[i * s + j].mul_add(c1[base + j], sum1);
                    sum2 = m2c[i * s + j].mul_add(c2[base + j], sum2);
                }
                dest[base + i] = sum1 * sum2;
            }
        }
    }
}

fn bench_ablation(c: &mut Criterion) {
    let s = 4;
    let patterns = 8192;
    let categories = 4;
    let len = categories * patterns * s;
    let c1: Vec<f64> = (0..len).map(|i| 0.1 + (i % 17) as f64 * 0.01).collect();
    let c2: Vec<f64> = (0..len).map(|i| 0.2 + (i % 11) as f64 * 0.02).collect();
    let m1: Vec<f64> = (0..categories * s * s)
        .map(|i| 0.01 * (1 + i % 9) as f64)
        .collect();
    let m2 = m1.clone();
    let mut dest = vec![0.0f64; len];
    let plan = plan_gpu(&catalog::quadro_p5000(), s, 8);

    let mut group = c.benchmark_group("dialect_ablation");
    group.throughput(Throughput::Elements(
        (categories * patterns * s * (4 * s + 2)) as u64,
    ));
    group.bench_function("generic_cuda_dialect", |b| {
        b.iter(|| {
            partials_kernel::<CudaDialect, f64>(PartialsArgs {
                dest: &mut dest,
                c1: Operand::Partials(&c1),
                c2: Operand::Partials(&c2),
                m1: &m1,
                m2: &m2,
                states: s,
                patterns,
                categories,
                plan,
                fma_enabled: true,
            })
        })
    });
    group.bench_function("generic_opencl_dialect", |b| {
        b.iter(|| {
            partials_kernel::<OpenClDialect, f64>(PartialsArgs {
                dest: &mut dest,
                c1: Operand::Partials(&c1),
                c2: Operand::Partials(&c2),
                m1: &m1,
                m2: &m2,
                states: s,
                patterns,
                categories,
                plan,
                fma_enabled: true,
            })
        })
    });
    group.bench_function("monomorphic_same_structure", |b| {
        b.iter(|| {
            monomorphic_kernel(
                &mut dest,
                &c1,
                &c2,
                &m1,
                &m2,
                s,
                patterns,
                categories,
                plan.patterns_per_group,
            )
        })
    });
    group.bench_function("pattern_major_reference", |b| {
        b.iter(|| pattern_major_reference(&mut dest, &c1, &c2, &m1, &m2, s, patterns, categories))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
