//! Criterion benchmarks of the threading models on a full traversal —
//! the microbenchmark behind Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use beagle_bench::instance_by_name;
use genomictest::{ModelKind, Problem, Scenario};

fn bench_threading_models(c: &mut Criterion) {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns: 4096,
        categories: 4,
        seed: 900,
    });
    let ops = problem.operations(false);
    let flops = problem.traversal_flops() as u64;

    let mut group = c.benchmark_group("threading_models");
    group.throughput(Throughput::Elements(flops));
    group.sample_size(20);
    for name in [
        "CPU-serial",
        "CPU-SSE",
        "CPU-futures",
        "CPU-threadcreate",
        "CPU-threadpool",
    ] {
        let mut inst = instance_by_name(&problem, name, true).expect("implementation");
        problem.load(inst.as_mut());
        inst.update_partials(&ops).expect("warmup");
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| inst.update_partials(&ops).expect("traversal"))
        });
    }
    group.finish();
}

fn bench_scaling_overhead(c: &mut Criterion) {
    // Cost of per-operation rescaling relative to a plain traversal.
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 16,
        patterns: 4096,
        categories: 4,
        seed: 901,
    });
    let plain = problem.operations(false);
    let scaled = problem.operations(true);
    let mut inst = instance_by_name(&problem, "CPU-serial", true).expect("serial");
    problem.load(inst.as_mut());
    inst.update_partials(&plain).expect("warmup");

    let mut group = c.benchmark_group("rescaling_overhead");
    group.sample_size(20);
    group.bench_function("unscaled", |b| {
        b.iter(|| inst.update_partials(&plain).expect("traversal"))
    });
    group.bench_function("scaled", |b| {
        b.iter(|| inst.update_partials(&scaled).expect("traversal"))
    });
    group.finish();
}

criterion_group!(benches, bench_threading_models, bench_scaling_overhead);
criterion_main!(benches);
