//! Partitioned analysis: one instance per data subset.
//!
//! §IV of the paper: "in order to exploit multiple CPU cores, application
//! programs running partitioned analyses can invoke multiple library
//! instances, one for each data subset (or partition). This approach suits
//! the trend of increasingly large molecular sequence data sets, which are
//! often heavily partitioned in order to better model the underlying
//! evolutionary processes."
//!
//! Here a two-gene dataset shares one tree: gene A is non-coding DNA under
//! HKY+Γ, gene B is a protein-coding region under a GY94 codon model. Each
//! partition gets its own BEAGLE instance (even its own back-end); the joint
//! log-likelihood is the sum.
//!
//! Run: `cargo run --release --example partitioned_analysis`

use beagle::harness::full_manager;
use beagle::phylo::models::codon::{self, CodonModelParams};
use beagle::phylo::models::nucleotide::hky85;
use beagle::phylo::simulate::simulate_patterns;
use beagle::prelude::*;

struct Partition {
    name: &'static str,
    model: ReversibleModel,
    rates: SiteRates,
    patterns: SitePatterns,
    reqs: Flags,
}

fn main() {
    let mut rng = rand_seeded(88);
    let tree = Tree::random(10, 0.09, &mut rng);

    // Gene A: fast-evolving non-coding DNA.
    let dna_model = hky85(3.5, &[0.32, 0.18, 0.2, 0.3]);
    let dna_rates = SiteRates::discrete_gamma(0.4, 4);
    let dna_patterns = simulate_patterns(&tree, &dna_model, &dna_rates, 3000, &mut rng);

    // Gene B: protein-coding, purifying selection.
    let codon_model = codon::gy94(
        CodonModelParams {
            kappa: 2.0,
            omega: 0.15,
        },
        &codon::uniform_codon_frequencies(),
    );
    let codon_rates = SiteRates::constant();
    let codon_patterns = simulate_patterns(&tree, &codon_model, &codon_rates, 600, &mut rng);

    let partitions = [
        Partition {
            name: "gene A (DNA, HKY+G)",
            model: dna_model,
            rates: dna_rates,
            patterns: dna_patterns,
            // Small state space, many patterns: CPU threading.
            reqs: Flags::THREADING_THREAD_POOL,
        },
        Partition {
            name: "gene B (codon, GY94)",
            model: codon_model,
            rates: codon_rates,
            patterns: codon_patterns,
            // 61 states: best on the (simulated) GPU.
            reqs: Flags::PROCESSOR_GPU,
        },
    ];

    let manager = full_manager();
    let mut joint = 0.0;
    for part in &partitions {
        let config = InstanceConfig::for_tree(
            tree.taxon_count(),
            part.patterns.pattern_count(),
            part.model.state_count(),
            part.rates.category_count(),
        );
        let mut inst = InstanceSpec::with_config(config)
            .require(part.reqs)
            .instantiate(&manager)
            .expect("instance for partition");

        let problem = beagle::harness::Problem {
            tree: tree.clone(),
            model: part.model.clone(),
            rates: part.rates.clone(),
            patterns: part.patterns.clone(),
        };
        problem.load(inst.as_mut());
        let lnl = problem.evaluate(inst.as_mut(), false);
        let oracle = problem.oracle();
        assert!((lnl - oracle).abs() < 1e-6);
        println!(
            "{:<22} {:>6} patterns  on {:<44} lnL = {:.2}",
            part.name,
            part.patterns.pattern_count(),
            inst.details().implementation_name,
            lnl
        );
        joint += lnl;
    }
    println!("\njoint log-likelihood over both partitions: {joint:.2}");
    println!("OK: per-partition instances on heterogeneous back-ends, summed exactly");
}
