//! Heterogeneous hardware sweep: one problem, every back-end.
//!
//! A `genomictest`-flavoured scan that creates the same likelihood problem
//! on every registered implementation — CPU serial/SSE/threaded, simulated
//! CUDA and OpenCL GPUs, OpenCL-x86 — verifying they all agree with the
//! reference oracle and reporting each one's throughput with its timing
//! provenance. This is the "which hardware should I use for my data?"
//! question BEAGLE exists to answer.
//!
//! Run: `cargo run --release --example heterogeneous_sweep`

use beagle::harness::{benchmark, full_manager, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn main() {
    for (label, model, patterns, categories) in [
        ("nucleotide", ModelKind::Nucleotide, 5_000, 4),
        ("amino acid", ModelKind::AminoAcid, 2_000, 4),
        ("codon", ModelKind::Codon, 800, 1),
    ] {
        let scenario = Scenario {
            model,
            taxa: 12,
            patterns,
            categories,
            seed: 99,
        };
        let problem = Problem::generate(&scenario);
        let oracle = problem.oracle();
        println!(
            "== {label}: 12 taxa, {} unique patterns, {} categories (oracle lnL {oracle:.2}) ==",
            problem.patterns.pattern_count(),
            categories
        );
        println!(
            "{:<46} {:>10} {:>14} {:>10}",
            "implementation", "GFLOPS", "ms/traversal", "timing"
        );

        let manager = full_manager();
        for name in manager.implementation_names() {
            let Ok(mut inst) =
                manager.create_instance_by_name(&name, &problem.config(), Flags::PRECISION_SINGLE)
            else {
                println!("{name:<46} {:>10}", "(unsupported)");
                continue;
            };
            let report = benchmark(&problem, inst.as_mut(), 2);
            // Correctness gate: single precision within relative 1e-4.
            let rel = ((report.log_likelihood - oracle) / oracle).abs();
            assert!(
                rel < 1e-3,
                "{name}: lnL {} vs oracle {oracle}",
                report.log_likelihood
            );
            println!(
                "{name:<46} {:>10.2} {:>14.3} {:>10}",
                report.gflops,
                report.per_traversal.as_secs_f64() * 1e3,
                if report.simulated {
                    "modeled"
                } else {
                    "measured"
                }
            );
        }
        println!();
    }
    println!("all implementations agree with the reference oracle to single precision.");
}
