//! Bayesian phylogenetic inference with MrBayes-lite on BEAGLE-RS.
//!
//! Simulates sequence data on a known tree, then recovers the posterior by
//! Metropolis-coupled MCMC (4 chains, one thread and one BEAGLE instance per
//! chain, as MrBayes+BEAGLE deploys). Demonstrates the application-level
//! integration the paper benchmarks in Fig. 6.
//!
//! Run: `cargo run --release --example bayesian_inference`

use beagle::mcmc::{run_mc3, BeagleEngine, LikelihoodEngine, Mc3Config, ModelParams};
use beagle::prelude::*;

fn main() {
    // Ground truth: 10 taxa, HKY with kappa = 4, 1200 sites.
    let mut rng = rand_seeded(2024);
    let true_tree = Tree::random(10, 0.08, &mut rng);
    let true_params = ModelParams::Nucleotide { kappa: 4.0 };
    let rates = SiteRates::constant();
    let alignment = beagle::phylo::simulate::simulate_alignment(
        &true_tree,
        &true_params.build(),
        &rates,
        1200,
        &mut rng,
    );
    let patterns = SitePatterns::compress(&alignment);
    let true_lnl = beagle::phylo::likelihood::log_likelihood(
        &true_tree,
        &true_params.build(),
        &rates,
        &patterns,
    );
    println!(
        "simulated 1200 sites on a 10-taxon tree (kappa = 4): {} unique patterns",
        patterns.pattern_count()
    );
    println!("log-likelihood at the true tree: {true_lnl:.2}\n");

    // One BEAGLE instance per chain, selected by the manager.
    let manager = beagle::full_manager();
    let config = InstanceConfig::for_tree(10, patterns.pattern_count(), 4, 1);
    let chains = 4;
    let mut engines: Vec<Box<dyn LikelihoodEngine>> = (0..chains)
        .map(|_| {
            let inst = InstanceSpec::with_config(config)
                .prefer(Flags::PROCESSOR_CPU)
                .instantiate(&manager)
                .expect("cpu instance");
            Box::new(BeagleEngine::new(
                inst,
                patterns.clone(),
                rates.clone(),
                true,
            )) as Box<dyn LikelihoodEngine>
        })
        .collect();
    println!("likelihood engine: {}", engines[0].name());

    // Start from a random tree and wrong kappa; let MC3 find its way.
    let start_tree = Tree::random(10, 0.1, &mut rng);
    let mc3 = Mc3Config {
        chains,
        generations: 600,
        swap_interval: 10,
        sample_interval: 10,
        heating: 0.15,
        seed: 7,
    };
    let result = run_mc3(
        &mc3,
        &start_tree,
        ModelParams::Nucleotide { kappa: 2.0 },
        &mut engines,
    );

    println!("\ncold-chain log-likelihood trace (every 60 generations):");
    for (i, l) in result.cold_trace.iter().enumerate().step_by(6) {
        println!("  gen {:>4}: {l:.2}", (i + 1) * 10);
    }
    println!(
        "\nfinal cold-chain lnL : {:.2}",
        result.final_log_likelihood
    );
    println!("lnL at true tree     : {true_lnl:.2}");
    for (i, s) in result.chain_stats.iter().enumerate() {
        println!("chain {i} acceptance   : {:.2}", s.acceptance_rate());
    }
    println!(
        "swaps                : {}/{} accepted",
        result.swaps_accepted, result.swaps_attempted
    );
    println!(
        "likelihood time      : {:.2} s",
        result.likelihood_time.as_secs_f64()
    );

    // Posterior summaries after 25% burn-in — what a user actually keeps.
    let post = result.posterior.burn_in(0.25);
    let k = post.kappa_summary();
    println!(
        "\nposterior kappa      : mean {:.2}  95% [{:.2}, {:.2}]  (true 4.0, n = {})",
        k.mean, k.lower95, k.upper95, k.n
    );
    println!("lnL effective sample : {:.1}", post.lnl_ess());
    println!("majority-rule clades (support > 0.5):");
    for (clade, support) in post
        .clade_supports()
        .into_iter()
        .filter(|(_, s)| *s > 0.5)
        .take(6)
    {
        let members: Vec<String> = clade.members().iter().map(|t| format!("t{t}")).collect();
        println!("  {support:.2}  {{{}}}", members.join(","));
    }

    // The sampler should have climbed to within a few units of the truth.
    let gap = true_lnl - result.final_log_likelihood;
    println!("\ngap to truth         : {gap:.2} log units");
    assert!(
        gap < 60.0,
        "MC3 failed to approach the true tree's likelihood"
    );
    println!("OK: posterior exploration reached the neighbourhood of the generating tree");
}
