//! Multi-device likelihood computation — the paper's future-work feature.
//!
//! Splits one large nucleotide problem across a simulated GPU and the host
//! CPU from within a *single* logical instance ([`PartitionedInstance`]),
//! with the pattern split weighted by a quick per-device calibration run —
//! "computation dynamically load balanced across multiple devices… the
//! library would select the best implementation for each data subset and
//! hardware pair" (paper, Conclusion).
//!
//! Run: `cargo run --release --example multi_device`

use beagle::core::multi::PartitionedInstance;
use beagle::harness::{benchmark, full_manager, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn main() {
    let scenario = Scenario {
        model: ModelKind::Nucleotide,
        taxa: 12,
        patterns: 20_000,
        categories: 4,
        seed: 31,
    };
    let problem = Problem::generate(&scenario);
    let manager = full_manager();
    println!(
        "problem: 12 taxa, {} unique patterns, 4 categories\n",
        problem.patterns.pattern_count()
    );

    // Calibrate: measure each candidate device on a small probe problem.
    let probe = Problem::generate(&Scenario {
        patterns: 2_000,
        ..scenario
    });
    let devices = [
        (
            "GPU (simulated, via OpenCL)",
            Flags::NONE,
            Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_GPU,
        ),
        (
            "host CPU (thread pool)",
            Flags::NONE,
            Flags::THREADING_THREAD_POOL,
        ),
    ];
    let mut weights = Vec::new();
    for (label, prefs, reqs) in devices {
        let mut inst = InstanceSpec::with_config(probe.config())
            .prefer(prefs)
            .require(reqs)
            .instantiate(&manager)
            .unwrap();
        let report = benchmark(&probe, inst.as_mut(), 2);
        println!(
            "calibration: {label:<28} {:>9.2} GFLOPS ({})",
            report.gflops,
            if report.simulated {
                "modeled"
            } else {
                "measured"
            }
        );
        weights.push(report.gflops);
    }

    // Build the partitioned instance with throughput-proportional ranges.
    let flag_pairs: Vec<(Flags, Flags)> = devices.iter().map(|&(_, p, r)| (p, r)).collect();
    let mut multi =
        PartitionedInstance::create(&manager, &problem.config(), &flag_pairs, &weights).unwrap();
    println!(
        "\nlogical instance: {}",
        multi.details().implementation_name
    );
    for i in 0..multi.device_count() {
        let (p0, p1) = multi.range(i);
        println!(
            "  device {i}: patterns {p0:>6}..{p1:<6} ({:.1}% of the problem)",
            (p1 - p0) as f64 / problem.patterns.pattern_count() as f64 * 100.0
        );
    }

    // Evaluate and verify against a single-device run and the oracle.
    problem.load(&mut multi);
    let lnl = problem.evaluate(&mut multi, false);
    let oracle = problem.oracle();
    println!("\npartitioned log-likelihood = {lnl:.4}");
    println!("oracle                     = {oracle:.4}");
    assert!((lnl - oracle).abs() < 1e-6);
    println!("OK: multi-device result matches the reference");
}
