//! Maximum-likelihood branch-length optimization — the GARLI/PhyML workflow.
//!
//! §III of the paper motivates BEAGLE with maximum-likelihood programs
//! (GARLI spends >94% of its runtime in likelihood-related calculation).
//! This example shows that client class on BEAGLE-RS: Newton–Raphson branch
//! optimization driven by the library's analytic branch derivatives
//! (`update_transition_derivatives` + `calculate_edge_derivatives`), with
//! each branch exposed as a root edge by re-rooting so an iteration costs
//! one matrix update plus one edge integration — no partials recomputation.
//!
//! Run: `cargo run --release --example ml_optimization`

use beagle::optimize::{optimize_branch_lengths, OptimizeOptions};
use beagle::prelude::*;
use beagle_phylo::likelihood::log_likelihood;
use beagle_phylo::models::nucleotide::hky85;
use beagle_phylo::simulate::simulate_alignment;

fn main() {
    // Simulate data on a known tree...
    let mut rng = rand_seeded(1234);
    let true_tree = Tree::random(12, 0.1, &mut rng);
    let model = hky85(3.0, &[0.3, 0.2, 0.25, 0.25]);
    let rates = SiteRates::discrete_gamma(0.6, 4);
    let aln = simulate_alignment(&true_tree, &model, &rates, 2000, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    let truth_lnl = log_likelihood(&true_tree, &model, &rates, &patterns);

    // ...then forget the branch lengths (keep the topology).
    let mut tree = true_tree.clone();
    for id in 0..tree.node_count() {
        if id != tree.root() {
            tree.node_mut(id).branch_length = 0.5;
        }
    }
    let start_lnl = log_likelihood(&tree, &model, &rates, &patterns);
    println!(
        "12 taxa, {} unique patterns, HKY+Γ",
        patterns.pattern_count()
    );
    println!("lnL with all branches at 0.5 : {start_lnl:.2}");
    println!("lnL at the generating tree   : {truth_lnl:.2}\n");

    let manager = beagle::full_manager();
    let config = InstanceConfig::for_tree(12, patterns.pattern_count(), 4, 4);
    let mut inst = InstanceSpec::with_config(config)
        .prefer(Flags::PROCESSOR_CPU)
        .instantiate(&manager)
        .expect("cpu instance");
    println!("optimizing on: {}\n", inst.details().implementation_name);

    let report = optimize_branch_lengths(
        &mut tree,
        &model,
        &rates,
        &patterns,
        inst.as_mut(),
        &OptimizeOptions {
            rounds: 6,
            ..Default::default()
        },
    )
    .expect("optimization");

    for (round, lnl) in report.per_round.iter().enumerate() {
        println!("after pass {}: lnL = {lnl:.2}", round + 1);
    }
    println!("\nfinal lnL   : {:.2}", report.final_log_likelihood);
    println!("truth lnL   : {truth_lnl:.2} (ML should match or exceed it)");
    assert!(report.final_log_likelihood >= truth_lnl - 1.0);

    // How close are the recovered branch lengths?
    let mut worst: f64 = 0.0;
    for (node, t) in tree.branch_assignments() {
        // Root children are confounded (pulley) — compare their sum.
        if true_tree.node(node).parent == Some(true_tree.root()) {
            continue;
        }
        worst = worst.max((t - true_tree.node(node).branch_length).abs());
    }
    println!("largest branch-length error (non-root edges): {worst:.4}");
    println!("OK: maximum-likelihood optimization recovered the generating tree's branch lengths");
}
