//! Device fault injection and automatic failover, end to end.
//!
//! Three scenarios against the same 8-taxon problem:
//! 1. a permanent device loss mid-traversal — the partitioned instance
//!    evicts the dead child, repartitions, and still matches the oracle;
//! 2. a transient kernel-launch fault — retried in place, nothing evicted;
//! 3. every accelerator dead at creation — the manager's fallback chain
//!    lands on a CPU implementation.
//!
//! Run with: cargo run --release --example device_failover

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::{Flags, InstanceSpec};
use beagle::harness::{full_manager_with_faults, ModelKind, Problem, Scenario};

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

fn main() {
    let p = problem();
    let oracle = p.oracle();
    println!("problem: 8 taxa, 900 patterns, 4 rate categories; oracle lnL = {oracle:.9}");

    // 1. Permanent device loss mid-run.
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi = PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0, 1.0])
        .expect("partitioned create");
    println!(
        "\n[1] permanent DeviceLost on {} at driver call 18",
        catalog::quadro_p5000().name
    );
    println!("    children before: {}", multi.device_count());
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);
    println!(
        "    children after:  {} (evictions: {}), lnL = {lnl:.9}, |Δoracle| = {:.2e}",
        multi.device_count(),
        multi.eviction_count(),
        (lnl - oracle).abs()
    );

    // 2. Transient launch fault: retried, not evicted.
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::KernelLaunch, true, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi = PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0])
        .expect("partitioned create");
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);
    println!("\n[2] transient KernelLaunch fault on the same device");
    println!(
        "    retries per child: {:?}, evictions: {}, lnL = {lnl:.9}, |Δoracle| = {:.2e}",
        multi.retry_counts(),
        multi.eviction_count(),
        (lnl - oracle).abs()
    );

    // 3. Every accelerator dead at creation: fallback chain finds the CPU.
    let mut faults = FaultDirectory::new();
    for spec in catalog::all() {
        faults.insert(
            spec.name,
            FaultPlan::new(1).with_fault(FaultKind::Allocation, false, Schedule::AtCall(1)),
        );
    }
    let manager = full_manager_with_faults(&faults);
    let mut inst = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .expect("fallback chain");
    println!("\n[3] all accelerators dead at creation");
    println!(
        "    fallback landed on: {}",
        inst.details().implementation_name
    );
    let (lnl, oracle) = beagle::harness::verify(&p, inst.as_mut(), false);
    println!(
        "    lnL = {lnl:.9}, |Δoracle| = {:.2e}",
        (lnl - oracle).abs()
    );
}
