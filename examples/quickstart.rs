//! Quickstart: compute a tree's log-likelihood through the BEAGLE-RS API.
//!
//! Walks the full client protocol the way BEAST / MrBayes / PhyML do when
//! they link against BEAGLE: create an instance sized for the problem, load
//! tip data and model, update transition matrices and partials along a
//! post-order schedule, and integrate at the root.
//!
//! Run: `cargo run --release --example quickstart`

use beagle::prelude::*;

fn main() {
    // 1. Data: a five-taxon alignment (could come from a FASTA/NEXUS file).
    let alignment = Alignment::from_text(
        Alphabet::Dna,
        &[
            ("human", "AAGCTTCACCGGCGCAGTCATTCTCATAAT"),
            ("chimp", "AAGCTTCACCGGCGCAATTATCCTCATAAT"),
            ("gorilla", "AAGCTTCACCGGCGCAGTTGTTCTTATAAT"),
            ("orangutan", "AAGCTTCACCGGCGCAACCACCCTCATGAT"),
            ("gibbon", "AAGCTTTACAGGTGCAACCGTCCTCATAAT"),
        ],
    );
    let patterns = SitePatterns::compress(&alignment);
    println!(
        "{} taxa, {} sites, {} unique patterns",
        alignment.taxon_count(),
        alignment.site_count(),
        patterns.pattern_count()
    );

    // 2. A tree with branch lengths (parse Newick or build programmatically).
    let (tree, names) = beagle::phylo::newick::from_newick(
        "((((human:0.02,chimp:0.02):0.01,gorilla:0.03):0.02,orangutan:0.06):0.03,gibbon:0.09);",
    )
    .expect("valid newick");
    assert_eq!(names, alignment.taxa().to_vec());

    // 3. Model: HKY85 with empirical-ish frequencies + discrete-gamma rates.
    let model = beagle::phylo::models::nucleotide::hky85(4.0, &[0.31, 0.18, 0.21, 0.30]);
    let rates = SiteRates::discrete_gamma(0.5, 4);

    // 4. Ask the implementation manager for the best available back-end.
    let manager = beagle::full_manager();
    let config = InstanceConfig::for_tree(
        tree.taxon_count(),
        patterns.pattern_count(),
        model.state_count(),
        rates.category_count(),
    );
    let mut instance = InstanceSpec::with_config(config)
        .prefer(Flags::PROCESSOR_CPU)
        .instantiate(&manager)
        .expect("some implementation is always available");
    println!(
        "instance: {} on {}",
        instance.details().implementation_name,
        instance.details().resource_name
    );

    // 5. Load data and model.
    for tip in 0..tree.taxon_count() {
        instance
            .set_tip_states(tip, &patterns.tip_states(tip))
            .unwrap();
    }
    instance.set_pattern_weights(patterns.weights()).unwrap();
    let eig = model.eigen();
    instance
        .set_eigen_decomposition(
            0,
            eig.vectors.as_slice(),
            eig.inverse_vectors.as_slice(),
            &eig.values,
        )
        .unwrap();
    instance
        .set_state_frequencies(0, model.frequencies())
        .unwrap();
    instance.set_category_rates(&rates.rates).unwrap();
    instance.set_category_weights(0, &rates.weights).unwrap();

    // 6. Transition matrices for every branch, then partials in post-order.
    let (matrix_indices, branch_lengths): (Vec<usize>, Vec<f64>) =
        tree.branch_assignments().iter().copied().unzip();
    instance
        .update_transition_matrices(0, &matrix_indices, &branch_lengths)
        .unwrap();

    let operations: Vec<Operation> = tree
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();
    instance.update_partials(&operations).unwrap();

    // 7. Integrate at the root.
    let lnl = instance
        .integrate_root(
            BufferId(tree.root()),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        )
        .unwrap();
    println!("log-likelihood = {lnl:.6}");

    // Cross-check against the slow reference implementation.
    let oracle = beagle::phylo::likelihood::log_likelihood(&tree, &model, &rates, &patterns);
    println!("oracle         = {oracle:.6}");
    assert!((lnl - oracle).abs() < 1e-8);
    println!("OK: BEAGLE-RS matches the reference pruning algorithm");
}
