//! Time-bounded robustness soak.
//!
//! Hammers a partitioned instance with seeded fault plans — hangs, stalls,
//! device loss, transient launch failures — drawn from a deterministic
//! per-iteration PRNG, under a per-launch watchdog deadline. Every
//! iteration must finish with the oracle's log-likelihood: a hang that the
//! watchdog cancels, a timeout that evicts a child, or a retried transient
//! must never lose an operation. Every few iterations the run also takes a
//! durable checkpoint, round-trips it through disk into a fresh manager,
//! and demands a bit-identical restore. Each iteration additionally draws a
//! starting state for the incremental memo layer, then flips it mid-storm
//! and re-evaluates: toggling memoization under fire must never change a
//! bit (the memo's bookkeeping runs even while skipping is disabled).
//!
//! Run with: cargo run --release --example soak -- --seconds 20
//! Exits non-zero if any iteration diverges.

use std::time::{Duration, Instant};

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::{BeagleInstance, Checkpoint, Flags, InstanceSpec, RetryPolicy};
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

struct Drawn {
    kind: FaultKind,
    transient: bool,
    call: u64,
    deadline: Duration,
    label: &'static str,
}

/// Draw one fault scenario. Every draw is survivable: faults only target
/// the CUDA device, and two fault-free CPU-side children always remain.
fn draw(rng: &mut u64) -> Drawn {
    let call = 15 + splitmix64(rng) % 8; // matrix kernel or a partials launch
    let deadline = if splitmix64(rng).is_multiple_of(2) {
        Duration::from_millis(10)
    } else {
        Duration::from_millis(100)
    };
    match splitmix64(rng) % 6 {
        0 => Drawn {
            kind: FaultKind::Hang,
            transient: false,
            call,
            deadline,
            label: "permanent hang",
        },
        1 => Drawn {
            kind: FaultKind::Hang,
            transient: true,
            call,
            deadline,
            label: "transient hang",
        },
        2 => Drawn {
            // Under every budget above: completes late, no fault observed.
            kind: FaultKind::Stall(Duration::from_millis(1)),
            transient: true,
            call,
            deadline,
            label: "short stall",
        },
        3 => Drawn {
            // Over every budget: the watchdog cancels it.
            kind: FaultKind::Stall(Duration::from_millis(500)),
            transient: true,
            call,
            deadline,
            label: "long stall",
        },
        4 => Drawn {
            kind: FaultKind::DeviceLost,
            transient: false,
            call,
            deadline,
            label: "device lost",
        },
        _ => Drawn {
            kind: FaultKind::KernelLaunch,
            transient: true,
            call,
            deadline,
            label: "transient launch",
        },
    }
}

fn main() {
    let mut budget = Duration::from_secs(10);
    let mut base_seed: u64 = 0xB0A7;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                let v = args.next().expect("--seconds needs a value");
                budget = Duration::from_secs(v.parse().expect("--seconds takes an integer"));
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                base_seed = v.parse().expect("--seed takes an integer");
            }
            other => panic!("unknown argument {other} (try --seconds N / --seed S)"),
        }
    }

    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 300,
        categories: 4,
        seed: 77,
    });
    let oracle = p.oracle();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let ckpt_path = std::env::temp_dir().join(format!("beagle-soak-{}.ckpt", std::process::id()));

    let start = Instant::now();
    let mut rng = base_seed;
    let (mut iterations, mut evictions, mut retries, mut checkpoints, mut toggles) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut failures: Vec<String> = Vec::new();
    println!(
        "soak: {}s budget, base seed {base_seed:#x}, oracle lnL = {oracle:.9}",
        budget.as_secs()
    );

    while start.elapsed() < budget {
        iterations += 1;
        let d = draw(&mut rng);
        let start_incremental = splitmix64(&mut rng).is_multiple_of(2);
        let faults = FaultDirectory::new().with_plan(
            catalog::quadro_p5000().name,
            FaultPlan::new(splitmix64(&mut rng)).with_fault(
                d.kind,
                d.transient,
                Schedule::AtCall(d.call),
            ),
        );
        let manager = full_manager_with_faults(&faults);
        let spec = InstanceSpec::with_config(p.config())
            .with_deadline(d.deadline)
            .with_retry_policy(RetryPolicy::default());
        let mut multi = match PartitionedInstance::create_with_spec(
            &manager,
            &spec,
            &devices,
            &[1.0, 1.0, 1.0],
        ) {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!(
                    "iter {iterations} ({}): creation failed: {e}",
                    d.label
                ));
                continue;
            }
        };
        multi.set_incremental(start_incremental);
        p.load(&mut multi);
        let lnl = p.evaluate(&mut multi, false);
        evictions += multi.eviction_count();
        retries += multi.retry_counts().iter().sum::<u64>();
        if (lnl - oracle).abs() >= 1e-6 {
            failures.push(format!(
                "iter {iterations} ({}, call {}, deadline {:?}): lnL {lnl} vs oracle {oracle}",
                d.label, d.call, d.deadline
            ));
        }

        // Mid-storm toggle: flip the memo layer and re-evaluate. Whether
        // the repeat is skipped (toggled on) or recomputed (toggled off),
        // the bits must not move.
        toggles += 1;
        multi.set_incremental(!start_incremental);
        p.load(&mut multi);
        let again = p.evaluate(&mut multi, false);
        if again.to_bits() != lnl.to_bits() {
            failures.push(format!(
                "iter {iterations} ({}): incremental toggle {} -> {} changed bits: \
                 {lnl} vs {again}",
                d.label, start_incremental, !start_incremental
            ));
        }

        // Periodically round-trip a durable checkpoint through disk into a
        // fresh manager and demand a bit-identical restore.
        if iterations.is_multiple_of(5) {
            checkpoints += 1;
            match multi.checkpoint() {
                Some(ckpt) => {
                    let round_trip = ckpt
                        .save(&ckpt_path)
                        .and_then(|()| Checkpoint::load(&ckpt_path))
                        .and_then(|loaded| loaded.restore(&full_manager()));
                    match round_trip {
                        Ok(mut restored) => {
                            let back = p.evaluate(&mut restored, false);
                            if (back - oracle).abs() >= 1e-6 {
                                failures.push(format!(
                                    "iter {iterations}: restored lnL {back} vs oracle {oracle}"
                                ));
                            }
                        }
                        Err(e) => {
                            failures.push(format!("iter {iterations}: checkpoint round-trip: {e}"))
                        }
                    }
                }
                None => failures.push(format!("iter {iterations}: no checkpoint produced")),
            }
        }
    }
    std::fs::remove_file(&ckpt_path).ok();

    println!(
        "soak: {iterations} iterations in {:.1}s — {evictions} evictions, {retries} retries, \
         {checkpoints} checkpoint round-trips, {toggles} incremental toggles, {} failures",
        start.elapsed().as_secs_f64(),
        failures.len()
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("soak: zero lost operations");
}
