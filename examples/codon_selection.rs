//! Codon-model selection-pressure analysis across heterogeneous hardware.
//!
//! The motivating workload of the paper's codon benchmarks: estimate dN/dS
//! (ω) on a fixed tree by profiling the likelihood over a grid of ω values —
//! the inner loop of positive-selection scans. The 61-state kernels dominate
//! the cost, so hardware choice matters; this example runs the same profile
//! on the serial CPU, the thread pool, OpenCL-x86, and the simulated R9 Nano
//! and reports each back-end's time (wall or modeled — labelled).
//!
//! Run: `cargo run --release --example codon_selection`

use std::time::Instant;

use beagle::phylo::models::codon::{self, CodonModelParams};
use beagle::prelude::*;

fn profile_omega(
    instance: &mut dyn BeagleInstance,
    tree: &Tree,
    patterns: &SitePatterns,
    omegas: &[f64],
) -> (Vec<f64>, f64) {
    // Static data.
    for tip in 0..tree.taxon_count() {
        instance
            .set_tip_states(tip, &patterns.tip_states(tip))
            .unwrap();
    }
    instance.set_pattern_weights(patterns.weights()).unwrap();
    instance.set_category_rates(&[1.0]).unwrap();
    instance.set_category_weights(0, &[1.0]).unwrap();

    let (matrix_indices, branch_lengths): (Vec<usize>, Vec<f64>) =
        tree.branch_assignments().iter().copied().unzip();
    let operations: Vec<Operation> = tree
        .operation_schedule()
        .iter()
        .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
        .collect();

    let simulated = instance.simulated_time().is_some();
    instance.reset_simulated_time();
    let start = Instant::now();
    let mut lnls = Vec::with_capacity(omegas.len());
    for &omega in omegas {
        // New ω → new rate matrix → new eigen system on the device.
        let model = codon::gy94(
            CodonModelParams { kappa: 2.5, omega },
            &codon::uniform_codon_frequencies(),
        );
        let eig = model.eigen();
        instance
            .set_eigen_decomposition(
                0,
                eig.vectors.as_slice(),
                eig.inverse_vectors.as_slice(),
                &eig.values,
            )
            .unwrap();
        instance
            .set_state_frequencies(0, model.frequencies())
            .unwrap();
        instance
            .update_transition_matrices(0, &matrix_indices, &branch_lengths)
            .unwrap();
        instance.update_partials(&operations).unwrap();
        lnls.push(
            instance
                .integrate_root(
                    BufferId(tree.root()),
                    BufferId(0),
                    BufferId(0),
                    ScalingMode::None,
                )
                .unwrap(),
        );
    }
    let secs = instance
        .simulated_time()
        .map(|d| d.as_secs_f64())
        .unwrap_or_else(|| start.elapsed().as_secs_f64());
    let _ = simulated;
    (lnls, secs)
}

fn main() {
    // Synthetic "arthropod-like" codon data: 12 taxa, ~800 unique patterns,
    // simulated under ω = 0.3 (purifying selection).
    let mut rng = beagle::prelude::rand_seeded(7);
    let tree = Tree::random(12, 0.08, &mut rng);
    let true_model = codon::gy94(
        CodonModelParams {
            kappa: 2.5,
            omega: 0.3,
        },
        &codon::uniform_codon_frequencies(),
    );
    let rates = SiteRates::constant();
    let patterns =
        beagle::phylo::simulate::simulate_patterns(&tree, &true_model, &rates, 800, &mut rng);
    println!(
        "codon dataset: 12 taxa, {} unique patterns, true omega = 0.3\n",
        patterns.pattern_count()
    );

    let omegas = [0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0];
    let config = InstanceConfig::for_tree(12, patterns.pattern_count(), 61, 1);
    let manager = beagle::full_manager();

    let backends = [
        "CPU-serial",
        "CPU-threadpool",
        "OpenCL-x86",
        "OpenCL-GPU (AMD Radeon R9 Nano (simulated))",
    ];
    let mut reference: Option<Vec<f64>> = None;
    for name in backends {
        let Ok(mut inst) = manager.create_instance_by_name(name, &config, Flags::PRECISION_DOUBLE)
        else {
            continue;
        };
        let (lnls, secs) = profile_omega(inst.as_mut(), &tree, &patterns, &omegas);
        let best = omegas
            .iter()
            .zip(&lnls)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let timing = if inst.simulated_time().is_some() {
            "modeled"
        } else {
            "measured"
        };
        println!(
            "{name:<46} {secs:>8.3} s ({timing}); ML omega = {:.2} (lnL {:.2})",
            best.0, best.1
        );
        match &reference {
            None => reference = Some(lnls),
            Some(r) => {
                for (a, b) in r.iter().zip(&lnls) {
                    assert!((a - b).abs() < 1e-5, "back-ends disagree: {a} vs {b}");
                }
            }
        }
    }

    println!("\nlikelihood profile (identical on every back-end):");
    for (o, l) in omegas.iter().zip(reference.unwrap()) {
        let bar = "#".repeat(((l + 40_000.0) / 80.0).max(1.0) as usize % 60);
        println!("  omega {o:>5.2}  lnL {l:>12.2}  {bar}");
    }
    println!("\nthe profile peaks near the simulated truth (omega = 0.3): purifying selection.");
}
