//! Likelihood as a service: the WIRE-v1 socket server and blocking client.
//!
//! Starts an in-process `beagle-serve`-style server on an ephemeral loopback
//! TCP port (a 2-worker instance pool behind the wire), connects a client,
//! round-trips a self-contained `SessionRequest`, and shows the service
//! contract: the remote log-likelihood is **bit-identical** to evaluating
//! the same session on a local instance, the server's stats snapshot
//! accounts for every request, and a graceful drain answers in-flight work
//! before stopping. See DESIGN.md §13.
//!
//! Run: `cargo run --release --example likelihood_service`

use beagle::core::{Lane, SessionRequest};
use beagle::prelude::*;
use beagle::server::{Client, Endpoint, ServerBuilder};

fn main() {
    // 1. A small nucleotide problem, same fixture style as `quickstart`.
    let mut rng = rand_seeded(7);
    let tree = Tree::random(8, 0.1, &mut rng);
    let model = beagle::phylo::models::nucleotide::hky85(3.0, &[0.3, 0.2, 0.25, 0.25]);
    let rates = SiteRates::discrete_gamma(0.5, 4);
    let alignment =
        beagle::phylo::simulate::simulate_alignment(&tree, &model, &rates, 300, &mut rng);
    let patterns = SitePatterns::compress(&alignment);

    // 2. A self-contained session: *all* inputs travel with the request, so
    //    any pool worker — local or behind a socket — can serve it.
    let eig = model.eigen();
    let session = SessionRequest {
        tip_states: (0..tree.taxon_count())
            .map(|t| patterns.tip_states(t))
            .collect(),
        pattern_weights: patterns.weights().to_vec(),
        category_rates: rates.rates.clone(),
        category_weights: rates.weights.clone(),
        frequencies: model.frequencies().to_vec(),
        eigen: Some((
            eig.vectors.as_slice().to_vec(),
            eig.inverse_vectors.as_slice().to_vec(),
            eig.values.clone(),
        )),
        matrices: tree.branch_assignments(),
        operations: tree
            .operation_schedule()
            .iter()
            .map(|e| Operation::new(e.destination, e.child1, e.matrix1, e.child2, e.matrix2))
            .collect(),
        root: BufferId(tree.root()),
        scaled: false,
        deadline: None,
    };

    // 3. Serve: a 2-worker pool of the best CPU implementation behind a
    //    loopback TCP listener on an ephemeral port.
    let manager = beagle::full_manager();
    let spec = InstanceSpec::for_tree(
        tree.taxon_count(),
        patterns.pattern_count(),
        model.state_count(),
        rates.category_count(),
    )
    .prefer(Flags::PROCESSOR_CPU);
    let server = ServerBuilder::from_spec(spec.clone())
        .workers(2)
        .max_in_flight(4)
        .tcp("127.0.0.1:0")
        .serve(&manager)
        .expect("server starts");
    let addr = server.tcp_addr().expect("tcp listener");
    println!("serving on tcp://{addr}");

    // 4. Client round trip. `evaluate_patiently` waits out Busy rejections
    //    (per-client cap, pool full) with backoff; transport errors
    //    reconnect and re-send — evaluation is pure, so that is safe.
    let mut client = Client::connect(Endpoint::Tcp(addr.to_string())).expect("client connects");
    let remote = client
        .evaluate_patiently(&session, Lane::Interactive, 16)
        .expect("remote evaluation");
    println!("remote log-likelihood = {remote:.6}");

    // 5. The contract: bit-identical to a local instance, not merely close.
    //    WIRE-v1 moves every f64 as its exact bit pattern.
    let mut local = spec.instantiate(&manager).expect("local instance");
    let reference = session.evaluate(local.as_mut()).expect("local evaluation");
    println!("local  log-likelihood = {reference:.6}");
    assert_eq!(
        remote.to_bits(),
        reference.to_bits(),
        "the wire must never change a result"
    );

    // 6. Admin frames: the stats snapshot (server counters, pool scheduler
    //    stats including audited rejections, breaker states)...
    let stats = client.stats().expect("stats frame");
    println!("stats: {stats}");

    // 7. ...and a graceful drain: in-flight work is answered, new work gets
    //    Busy{Draining}, listeners wake and exit.
    assert!(server.drain(None), "idle server drains fully");
    println!("OK: remote result bit-identical to local; server drained");
}
