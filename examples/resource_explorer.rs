//! Resource discovery and implementation selection.
//!
//! Shows the plugin/manager machinery: what resources exist, how preference
//! and requirement flags steer instance creation, and how the library
//! reports what an instance actually is — the `beagleGetResourceList` /
//! `beagleCreateInstance` workflow of the C API.
//!
//! Run: `cargo run --release --example resource_explorer`

use beagle::prelude::*;

fn main() {
    let manager = beagle::full_manager();

    println!("== resource list ==");
    for (name, res) in manager
        .implementation_names()
        .iter()
        .zip(manager.resource_list())
    {
        println!("{name:<46} {}", res.name);
        println!("{:<46} supports: {}", "", res.support_flags);
    }

    let config = InstanceConfig::for_tree(8, 1000, 4, 4);
    println!("\n== selection scenarios (8 taxa, 1000 patterns, nucleotide) ==");
    let scenarios: [(&str, Flags, Flags); 6] = [
        ("no constraints (best available)", Flags::NONE, Flags::NONE),
        ("require GPU", Flags::NONE, Flags::PROCESSOR_GPU),
        (
            "require OpenCL on a CPU",
            Flags::NONE,
            Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU,
        ),
        ("prefer SSE vectorization", Flags::VECTOR_SSE, Flags::NONE),
        (
            "require double precision + CUDA",
            Flags::NONE,
            Flags::PRECISION_DOUBLE | Flags::FRAMEWORK_CUDA,
        ),
        (
            "require serial execution",
            Flags::NONE,
            Flags::THREADING_NONE,
        ),
    ];
    for (label, prefs, reqs) in scenarios {
        let spec = InstanceSpec::with_config(config)
            .prefer(prefs)
            .require(reqs);
        match spec.instantiate(&manager) {
            Ok(inst) => {
                let d = inst.details();
                println!(
                    "{label:<38} -> {} [{} thread(s)]",
                    d.implementation_name, d.thread_count
                );
            }
            Err(e) => println!("{label:<38} -> error: {e}"),
        }
    }

    // A requirement no implementation satisfies.
    println!("\n== unsatisfiable requirement ==");
    let impossible = Flags::FRAMEWORK_CUDA | Flags::PROCESSOR_CPU;
    match InstanceSpec::with_config(config)
        .require(impossible)
        .instantiate(&manager)
    {
        Ok(_) => unreachable!("no CUDA CPU exists"),
        Err(e) => println!("require CUDA-on-CPU -> {e}"),
    }

    // Codon configs exclude the nucleotide-only SSE factory automatically.
    println!("\n== configuration-dependent support ==");
    let codon_config = InstanceConfig::for_tree(8, 500, 61, 1);
    let inst = InstanceSpec::with_config(codon_config)
        .prefer(Flags::VECTOR_SSE)
        .require(Flags::PROCESSOR_CPU)
        .instantiate(&manager)
        .expect("falls back to a non-SSE implementation");
    println!(
        "codon model with SSE preference -> {} (SSE path is nucleotide-only)",
        inst.details().implementation_name
    );
}
