//! Property-based workspace tests: statistical invariants of the likelihood
//! machinery that must hold for arbitrary inputs, checked with proptest.

use beagle::core::multi::weighted_ranges_aligned;
use beagle::core::{BalancerConfig, LoadBalancer, PATTERN_STRIDE};
use beagle::harness::full_manager;
use beagle::phylo::likelihood::log_likelihood;
use beagle::phylo::models::nucleotide::{gtr, hky85};
use beagle::phylo::simulate::simulate_alignment;
use beagle::prelude::*;
use proptest::prelude::*;

/// Build a reproducible random problem from proptest-chosen knobs.
fn problem(
    taxa: usize,
    sites: usize,
    kappa: f64,
    seed: u64,
) -> (Tree, ReversibleModel, SiteRates, SitePatterns) {
    let mut rng = rand_seeded(seed);
    let tree = Tree::random(taxa, 0.15, &mut rng);
    let model = hky85(kappa, &[0.3, 0.2, 0.25, 0.25]);
    let rates = SiteRates::constant();
    let aln = simulate_alignment(&tree, &model, &rates, sites, &mut rng);
    let patterns = SitePatterns::compress(&aln);
    (tree, model, rates, patterns)
}

fn beagle_lnl(
    name: &str,
    tree: &Tree,
    model: &ReversibleModel,
    rates: &SiteRates,
    patterns: &SitePatterns,
) -> f64 {
    let manager = full_manager();
    let config = InstanceConfig::for_tree(
        tree.taxon_count(),
        patterns.pattern_count(),
        model.state_count(),
        rates.category_count(),
    );
    let mut inst = manager
        .create_instance_by_name(name, &config, Flags::PRECISION_DOUBLE)
        .unwrap();
    let p = beagle::harness::Problem {
        tree: tree.clone(),
        model: model.clone(),
        rates: rates.clone(),
        patterns: patterns.clone(),
    };
    p.load(inst.as_mut());
    p.evaluate(inst.as_mut(), false)
}

/// Makespan skew of `ranges` under per-part throughput `rates`: worst
/// per-part time over the ideal (perfectly proportional) time. Always ≥ 1.
fn skew_of(ranges: &[(usize, usize)], rates: &[f64]) -> f64 {
    let patterns: usize = ranges.iter().map(|(a, b)| b - a).sum();
    let ideal = patterns as f64 / rates.iter().sum::<f64>();
    ranges
        .iter()
        .zip(rates)
        .map(|(&(a, b), &r)| (b - a) as f64 / r)
        .fold(0.0f64, f64::max)
        / ideal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The BEAGLE result equals the pruning oracle for random problems.
    #[test]
    fn beagle_matches_oracle(
        taxa in 3usize..12,
        sites in 20usize..150,
        kappa in 0.5f64..8.0,
        seed in 0u64..1000,
    ) {
        let (tree, model, rates, patterns) = problem(taxa, sites, kappa, seed);
        let oracle = log_likelihood(&tree, &model, &rates, &patterns);
        let lnl = beagle_lnl("CPU-serial", &tree, &model, &rates, &patterns);
        prop_assert!((lnl - oracle).abs() < 1e-8);
    }

    /// Doubling every pattern weight doubles the log-likelihood.
    #[test]
    fn weight_linearity(
        taxa in 3usize..10,
        sites in 20usize..100,
        seed in 0u64..1000,
    ) {
        let (tree, model, rates, patterns) = problem(taxa, sites, 2.0, seed);
        let l1 = log_likelihood(&tree, &model, &rates, &patterns);
        let doubled = SitePatterns::from_parts(
            (0..patterns.pattern_count()).map(|p| patterns.pattern(p).to_vec()).collect(),
            patterns.weights().iter().map(|w| 2.0 * w).collect(),
        );
        let l2 = log_likelihood(&tree, &model, &rates, &doubled);
        prop_assert!((l2 - 2.0 * l1).abs() < 1e-8);
    }

    /// Permuting the pattern order leaves the likelihood unchanged.
    #[test]
    fn pattern_order_invariance(
        taxa in 3usize..10,
        sites in 20usize..100,
        seed in 0u64..1000,
    ) {
        let (tree, model, rates, patterns) = problem(taxa, sites, 3.0, seed);
        let n = patterns.pattern_count();
        // Deterministic permutation: reverse.
        let rev = SitePatterns::from_parts(
            (0..n).rev().map(|p| patterns.pattern(p).to_vec()).collect(),
            patterns.weights().iter().rev().copied().collect(),
        );
        let a = beagle_lnl("CPU-threadpool", &tree, &model, &rates, &patterns);
        let b = beagle_lnl("CPU-threadpool", &tree, &model, &rates, &rev);
        prop_assert!((a - b).abs() < 1e-8);
    }

    /// Log-likelihood is invariant under scaling of the GTR exchangeability
    /// vector (Q is normalized).
    #[test]
    fn q_normalization_invariance(
        scale in 0.1f64..10.0,
        seed in 0u64..1000,
    ) {
        let rates6 = [1.0, 2.0, 0.5, 1.5, 3.0, 1.0];
        let scaled6 = rates6.map(|r| r * scale);
        let pi = [0.3, 0.2, 0.3, 0.2];
        let m1 = gtr(&rates6, &pi);
        let m2 = gtr(&scaled6, &pi);
        let mut rng = rand_seeded(seed);
        let tree = Tree::random(6, 0.1, &mut rng);
        let srates = SiteRates::constant();
        let aln = simulate_alignment(&tree, &m1, &srates, 60, &mut rng);
        let patterns = SitePatterns::compress(&aln);
        let l1 = log_likelihood(&tree, &m1, &srates, &patterns);
        let l2 = log_likelihood(&tree, &m2, &srates, &patterns);
        prop_assert!((l1 - l2).abs() < 1e-8);
    }

    /// Per-operation rescaling never changes the double-precision result.
    #[test]
    fn scaling_is_numerically_neutral(
        taxa in 3usize..10,
        sites in 20usize..80,
        seed in 0u64..1000,
    ) {
        let (tree, model, rates, patterns) = problem(taxa, sites, 2.0, seed);
        let manager = full_manager();
        let config = InstanceConfig::for_tree(taxa, patterns.pattern_count(), 4, 1);
        let p = beagle::harness::Problem {
            tree: tree.clone(), model: model.clone(), rates: rates.clone(), patterns: patterns.clone(),
        };
        let mut a = manager
            .create_instance_by_name("CPU-serial", &config, Flags::PRECISION_DOUBLE)
            .unwrap();
        p.load(a.as_mut());
        let unscaled = p.evaluate(a.as_mut(), false);
        let mut b = manager
            .create_instance_by_name("CPU-serial", &config, Flags::PRECISION_DOUBLE)
            .unwrap();
        p.load(b.as_mut());
        let scaled = p.evaluate(b.as_mut(), true);
        prop_assert!((unscaled - scaled).abs() < 1e-8);
    }

    /// The balancer's stride-aligned repartition always covers `0..patterns`
    /// contiguously with non-empty parts, interior split points on the
    /// stride whenever the pattern count permits.
    #[test]
    fn rebalanced_ranges_cover_all_patterns(
        patterns in 16usize..5000,
        raw_weights in proptest::collection::vec(0.05f64..100.0, 2..6),
        stride in 1usize..32,
    ) {
        // patterns >= 16 and at most 6 weights, so the split is always feasible.
        let ranges = weighted_ranges_aligned(patterns, &raw_weights, stride).unwrap();
        prop_assert_eq!(ranges.len(), raw_weights.len());
        prop_assert_eq!(ranges[0].0, 0);
        prop_assert_eq!(ranges[ranges.len() - 1].1, patterns);
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
        }
        for &(a, b) in &ranges {
            prop_assert!(b > a, "no part may be empty: {:?}", ranges);
        }
        // Interior splits land on the stride when there is room for every
        // part to get at least one full stride block.
        if patterns >= raw_weights.len() * stride {
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].1 % stride, 0, "split {} off stride {}", w[0].1, stride);
            }
        }
    }

    /// Pattern shares are monotone in observed throughput: a part that the
    /// balancer measured as faster never receives fewer patterns.
    #[test]
    fn rebalanced_shares_monotone_in_throughput(
        rates in proptest::collection::vec(50.0f64..5000.0, 2..6),
        patterns in 1000usize..8000,
    ) {
        let mut b = LoadBalancer::new(rates.len(), BalancerConfig::default());
        for _ in 0..3 {
            for (i, &r) in rates.iter().enumerate() {
                b.observe(i, 1000, std::time::Duration::from_secs_f64(1000.0 / r));
            }
        }
        let thr = b.throughputs().expect("all parts observed");
        let ranges = weighted_ranges_aligned(patterns, &thr, PATTERN_STRIDE).unwrap();
        for i in 0..rates.len() {
            for j in 0..rates.len() {
                if thr[i] > thr[j] {
                    let ni = ranges[i].1 - ranges[i].0;
                    let nj = ranges[j].1 - ranges[j].0;
                    // Stride rounding can cost at most one block.
                    prop_assert!(
                        ni + PATTERN_STRIDE > nj,
                        "part {} ({} pat/s) got {}, part {} ({} pat/s) got {}",
                        i, thr[i], ni, j, thr[j], nj
                    );
                }
            }
        }
    }

    /// Under stationary throughputs, an accepted rebalance plan strictly
    /// decreases the predicted makespan skew — the no-thrash guarantee.
    #[test]
    fn rebalance_strictly_decreases_skew_under_stationary_throughputs(
        rates in proptest::collection::vec(50.0f64..5000.0, 2..5),
        patterns in 2000usize..10000,
        batches in 2u32..6,
    ) {
        let mut b = LoadBalancer::new(rates.len(), BalancerConfig::default());
        for _ in 0..batches {
            for (i, &r) in rates.iter().enumerate() {
                b.observe(i, 500, std::time::Duration::from_secs_f64(500.0 / r));
            }
        }
        // Start from an equal split, then let the balancer iterate. An
        // accepted plan resets settling, so each round re-observes the same
        // (stationary) throughputs before asking again.
        let equal: Vec<f64> = vec![1.0; rates.len()];
        let mut ranges = weighted_ranges_aligned(patterns, &equal, PATTERN_STRIDE).unwrap();
        let mut skew = b.predicted_skew(&ranges).expect("estimates settled");
        let mut accepted = 0;
        loop {
            let Some((next, est)) = b.plan(patterns, &ranges) else { break };
            let next_skew = skew_of(&next, &est);
            prop_assert!(
                next_skew < skew,
                "accepted plan must improve skew: {} -> {}",
                skew, next_skew
            );
            ranges = next;
            skew = next_skew;
            accepted += 1;
            prop_assert!(accepted <= 10, "stationary throughputs must converge, not thrash");
            for _ in 0..BalancerConfig::default().min_batches {
                for (i, &r) in rates.iter().enumerate() {
                    b.observe(i, 500, std::time::Duration::from_secs_f64(500.0 / r));
                }
            }
        }
        // Once plan() goes quiet, the split is within threshold or cannot
        // be improved at this stride.
        prop_assert!(skew >= 1.0);
    }

    /// The incremental memoization layer never serves stale bits: after an
    /// arbitrary interleaving of branch perturbations, model swaps, and
    /// scaled/unscaled re-evaluations, a long-lived memoized instance always
    /// matches a freshly built always-recompute instance, bit for bit.
    #[test]
    fn incremental_memoization_never_serves_stale_bits(
        taxa in 4usize..10,
        sites in 20usize..100,
        seed in 0u64..1000,
        // Each move packs (branch, length factor, swap-model, scaled) into
        // one u64 — the vendored proptest has no tuple strategies.
        moves in proptest::collection::vec(0u64..(1u64 << 28), 1..8),
    ) {
        let (tree, model, rates, patterns) = problem(taxa, sites, 2.0, seed);
        let mut p = beagle::harness::Problem { tree, model, rates, patterns };
        let manager = full_manager();
        let mut memoized = InstanceSpec::with_config(p.config())
            .named("CPU-serial")
            .instantiate(&manager)
            .unwrap();
        prop_assert!(memoized.memo_stats().is_some());
        let n_branch = 2 * taxa - 2;
        let mut kappa = 2.0;
        for &m in &moves {
            let branch = (m & 0xffff) as usize % n_branch;
            let factor = 0.5 + 1.5 * (((m >> 16) & 0x3ff) as f64 / 1023.0);
            let swap_model = (m >> 26) & 1 == 1;
            let scaled = (m >> 27) & 1 == 1;
            p.tree.node_mut(branch).branch_length *= factor;
            if swap_model {
                kappa += 0.5;
                p.model = hky85(kappa, &[0.3, 0.2, 0.25, 0.25]);
            }
            p.load(memoized.as_mut());
            let inc = p.evaluate(memoized.as_mut(), scaled);
            // The reference is built from scratch every move: no history,
            // nothing to skip, so any stale skip in `memoized` shows up as
            // a bit difference.
            let mut fresh = InstanceSpec::with_config(p.config())
                .named("CPU-serial")
                .incremental(false)
                .instantiate(&manager)
                .unwrap();
            p.load(fresh.as_mut());
            let full = p.evaluate(fresh.as_mut(), scaled);
            prop_assert_eq!(
                inc.to_bits(), full.to_bits(),
                "stale skip: incremental {} vs recompute {}", inc, full
            );
        }
    }

    /// Extending a branch away from zero can only decrease the likelihood of
    /// identical-sequence data (any substitution is unfavourable).
    #[test]
    fn identical_sequences_favour_zero_branches(
        taxa in 3usize..8,
        t in 0.01f64..2.0,
    ) {
        let model = hky85(2.0, &[0.25; 4]);
        let rates = SiteRates::constant();
        // All-identical alignment: every taxon is "ACGT" repeated.
        let seq = "ACGTACGTACGT";
        let rows: Vec<(String, &str)> = (0..taxa).map(|i| (format!("t{i}"), seq)).collect();
        let refs: Vec<(&str, &str)> = rows.iter().map(|(n, s)| (n.as_str(), *s)).collect();
        let aln = Alignment::from_text(Alphabet::Dna, &refs);
        let patterns = SitePatterns::compress(&aln);
        let near_zero = Tree::ladder(taxa, 1e-9);
        let stretched = Tree::ladder(taxa, t);
        let l0 = log_likelihood(&near_zero, &model, &rates, &patterns);
        let l1 = log_likelihood(&stretched, &model, &rates, &patterns);
        prop_assert!(l0 > l1, "{l0} should beat {l1}");
    }
}
