//! Differential harness for the epoch-based incremental layer.
//!
//! The memoization wrapper (`beagle_core::memo`) may skip a kernel call only
//! when the destination already holds the bits that call would produce, so
//! an incremental instance must be indistinguishable — bit for bit — from an
//! always-recompute instance on the same call sequence. These tests drive
//! both through an MCMC-like single-branch sweep on every backend ×
//! precision × scaling × queue mode, and through the failure machinery
//! (mid-run device loss, checkpoint/restore) where stale epochs would be
//! silently wrong rather than loudly broken.

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 160,
        categories: 2,
        seed: 11,
    })
}

/// One MCMC-style sweep: each iteration perturbs a single branch, re-loads,
/// and re-evaluates. Returns the lnL bit trace.
fn sweep(p: &mut Problem, inst: &mut dyn BeagleInstance, scaled: bool, iters: usize) -> Vec<u64> {
    p.load(inst);
    let mut trace = vec![p.evaluate(inst, scaled).to_bits()];
    let n_branch = 2 * p.tree.taxon_count() - 2;
    for i in 0..iters {
        let node = (i * 5 + 1) % n_branch;
        p.tree.node_mut(node).branch_length *= 1.0 + 0.02 * ((i % 7) as f64 + 1.0);
        p.load(inst);
        trace.push(p.evaluate(inst, scaled).to_bits());
    }
    trace
}

fn instance(
    manager: &ImplementationManager,
    p: &Problem,
    name: &str,
    incremental: bool,
    single: bool,
    asynch: bool,
) -> Option<Box<dyn BeagleInstance>> {
    let mut flags = if single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    if asynch {
        flags |= Flags::COMPUTATION_ASYNCH;
    }
    InstanceSpec::with_config(p.config())
        .named(name)
        .require(flags)
        .incremental(incremental)
        .instantiate(manager)
        .ok()
}

/// The tentpole guarantee: on every backend, in both precisions, scaled and
/// unscaled, eager and queued, a memoized sweep produces the same bit trace
/// as an always-recompute sweep — while actually skipping work.
#[test]
fn incremental_sweep_is_bit_identical_on_every_backend() {
    let manager = full_manager();
    let mut compared = 0;
    for name in manager.implementation_names() {
        for single in [false, true] {
            for scaled in [false, true] {
                for asynch in [false, true] {
                    let Some(mut inc) = instance(&manager, &problem(), &name, true, single, asynch)
                    else {
                        continue;
                    };
                    let mut base = instance(&manager, &problem(), &name, false, single, asynch)
                        .expect("disabling memoization must not change eligibility");
                    assert!(
                        base.memo_stats().is_none(),
                        "{name}: .incremental(false) must not install the memo layer"
                    );
                    let inc_trace = sweep(&mut problem(), inc.as_mut(), scaled, 6);
                    let base_trace = sweep(&mut problem(), base.as_mut(), scaled, 6);
                    assert_eq!(
                        inc_trace, base_trace,
                        "{name} single={single} scaled={scaled} asynch={asynch}: \
                         incremental trace diverged"
                    );
                    let stats = inc
                        .memo_stats()
                        .expect("default spec installs the memo layer");
                    assert!(
                        stats.total_skips() > 0,
                        "{name} single={single} scaled={scaled} asynch={asynch}: \
                         a single-branch sweep must skip clean work, got {stats:?}"
                    );
                    compared += 1;
                }
            }
        }
    }
    assert!(
        compared >= 28,
        "expected most backends to run, got {compared}"
    );
}

/// Mid-sweep device loss: failover replays the journal onto rebuilt children
/// whose buffers start empty, so their epochs must reset — a stale signature
/// here would skip the replay writes and freeze the dead device's partials.
#[test]
fn incremental_layer_survives_midrun_failover() {
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(40)),
    );
    let manager = full_manager_with_faults(&faults);
    let mut p = problem();
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    assert!(
        multi.memo_stats().is_some(),
        "partitioned children are memoized by default"
    );
    p.load(&mut multi);
    p.evaluate(&mut multi, false);
    let n_branch = 2 * p.tree.taxon_count() - 2;
    for i in 0..8 {
        p.tree.node_mut((i * 5 + 1) % n_branch).branch_length *= 1.04;
        p.load(&mut multi);
        let lnl = p.evaluate(&mut multi, false);
        let oracle = p.oracle();
        assert!(
            (lnl - oracle).abs() < 1e-6,
            "iteration {i}: post-failover incremental lnL {lnl} vs oracle {oracle}"
        );
    }
    assert_eq!(multi.eviction_count(), 1, "the dead child must be evicted");
    let stats = multi.memo_stats().unwrap();
    assert!(
        stats.total_skips() > 0,
        "the surviving sweep must still skip clean work: {stats:?}"
    );
}

/// Checkpoint/restore: the restored instance's backend buffers are rebuilt
/// from the journal, so its memo state must start over. The continuation of
/// the sweep must be bit-identical on the original, the restored copy, and
/// an always-recompute reference.
#[test]
fn incremental_layer_survives_checkpoint_restore() {
    let name = format!("CUDA ({})", catalog::quadro_p5000().name);
    let manager = full_manager();
    let mut p = problem();
    let mut inst = InstanceSpec::with_config(p.config())
        .named(&name)
        .checkpointed()
        .instantiate(&manager)
        .unwrap();
    let mut base = InstanceSpec::with_config(p.config())
        .named(&name)
        .incremental(false)
        .instantiate(&manager)
        .unwrap();

    // A few incremental iterations before the snapshot, so the checkpoint is
    // taken from a state the memo layer has already been skipping against.
    p.load(inst.as_mut());
    p.load(base.as_mut());
    p.evaluate(inst.as_mut(), false);
    p.evaluate(base.as_mut(), false);
    let n_branch = 2 * p.tree.taxon_count() - 2;
    for i in 0..3 {
        p.tree.node_mut((i * 5 + 1) % n_branch).branch_length *= 1.03;
        p.load(inst.as_mut());
        p.load(base.as_mut());
        let a = p.evaluate(inst.as_mut(), false);
        let b = p.evaluate(base.as_mut(), false);
        assert_eq!(a.to_bits(), b.to_bits(), "pre-snapshot iteration {i}");
    }

    let ckpt = inst.checkpoint().expect("checkpointed spec must snapshot");
    let fresh = full_manager();
    let mut restored = ckpt.restore(&fresh).unwrap();

    for i in 3..8 {
        p.tree.node_mut((i * 5 + 1) % n_branch).branch_length *= 1.03;
        p.load(inst.as_mut());
        p.load(&mut restored);
        p.load(base.as_mut());
        let a = p.evaluate(inst.as_mut(), false);
        let r = p.evaluate(&mut restored, false);
        let b = p.evaluate(base.as_mut(), false);
        assert_eq!(
            a.to_bits(),
            r.to_bits(),
            "iteration {i}: restored instance diverged from the original"
        );
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "iteration {i}: incremental diverged from always-recompute"
        );
    }
}
