//! Workspace integration: the multi-device PartitionedInstance (the paper's
//! planned "dynamic load balancing across multiple devices from within a
//! single library instance") must agree with single-device evaluation.

use beagle::core::multi::{weighted_ranges, PartitionedInstance};
use beagle::harness::{full_manager, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

#[test]
fn partitioned_matches_single_device() {
    let p = problem();
    let oracle = p.oracle();
    let manager = full_manager();

    // Heterogeneous split: a simulated GPU plus two CPU implementations.
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::THREADING_THREAD_POOL),
    ];
    let weights = [8.0, 1.0, 1.0];
    let mut multi = PartitionedInstance::create(&manager, &p.config(), &devices, &weights).unwrap();
    assert_eq!(multi.device_count(), 3);
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);
    assert!((lnl - oracle).abs() < 1e-7, "{lnl} vs {oracle}");
}

#[test]
fn partitioned_site_likelihoods_concatenate_correctly() {
    let p = problem();
    let manager = full_manager();
    let devices = [(Flags::NONE, Flags::NONE), (Flags::NONE, Flags::NONE)];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let total = p.evaluate(&mut multi, false);
    let sites = multi.get_site_log_likelihoods().unwrap();
    assert_eq!(sites.len(), p.patterns.pattern_count());
    let manual: f64 = sites
        .iter()
        .zip(p.patterns.weights())
        .map(|(l, w)| l * w)
        .sum();
    assert!((total - manual).abs() < 1e-8);

    // And they match a single-device run site by site.
    let mut single = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .unwrap();
    p.load(single.as_mut());
    p.evaluate(single.as_mut(), false);
    let ref_sites = single.get_site_log_likelihoods().unwrap();
    for (a, b) in sites.iter().zip(&ref_sites) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn partitioned_scaling_and_single_precision() {
    let p = problem();
    let oracle = p.oracle();
    let manager = full_manager();
    let devices = [
        (Flags::PRECISION_SINGLE, Flags::PROCESSOR_GPU),
        (Flags::PRECISION_SINGLE, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[2.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, true);
    assert!(((lnl - oracle) / oracle).abs() < 1e-4, "{lnl} vs {oracle}");
}

#[test]
fn partitioned_partials_roundtrip() {
    let p = problem();
    let manager = full_manager();
    let devices = [(Flags::NONE, Flags::NONE), (Flags::NONE, Flags::NONE)];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 2.0]).unwrap();
    let full = p.config().partials_len();
    let data: Vec<f64> = (0..full).map(|i| (i % 97) as f64 * 0.01).collect();
    multi.set_partials(9, &data).unwrap();
    let got = multi.get_partials(9).unwrap();
    assert_eq!(data, got, "split + reassembly must be the identity");
}

#[test]
fn partitioned_details_aggregate() {
    let p = problem();
    let manager = full_manager();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::THREADING_THREAD_POOL),
    ];
    let multi = PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    let d = multi.details();
    assert!(d.implementation_name.starts_with("Partitioned["));
    assert!(d.implementation_name.contains("CUDA"));
    assert!(d.flags.contains(Flags::FRAMEWORK_CUDA));
    assert!(d.flags.contains(Flags::THREADING_THREAD_POOL));
}

#[test]
fn ranges_scale_with_device_speed() {
    // A device with 9x the throughput gets ~90% of the patterns; the split
    // point rounds to the SIMD pattern stride (900 -> 904).
    let r = weighted_ranges(1000, &[9.0, 1.0]).unwrap();
    assert_eq!(r[0], (0, 904));
    assert_eq!(r[1], (904, 1000));
}

#[test]
fn details_refresh_after_rebalance() {
    let p = problem();
    let manager = full_manager();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::THREADING_THREAD_POOL),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    p.evaluate(&mut multi, false);

    let before = multi.details();
    assert!(before.implementation_name.contains("CUDA"));

    // An explicit migration rebuilds the children at new ranges; the
    // aggregated details must be recomputed over the new parts.
    assert!(multi.rebalance_to(&[3.0, 1.0]).unwrap());
    let after = multi.details();
    assert!(after.implementation_name.starts_with("Partitioned["));
    assert!(after.implementation_name.contains("CUDA"));
    assert!(after.flags.contains(Flags::FRAMEWORK_CUDA));
    assert!(after.flags.contains(Flags::THREADING_THREAD_POOL));

    // And the rebalanced instance still evaluates correctly.
    let lnl = p.evaluate(&mut multi, false);
    assert!((lnl - p.oracle()).abs() < 1e-7);
}
