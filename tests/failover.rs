//! Fault-tolerance at the multi-device layer: a partitioned instance must
//! survive injected device faults (retrying transient ones, evicting dead
//! children and repartitioning on permanent ones) and still produce the
//! oracle's log-likelihood. Plus: automatic numerical rescue must recover
//! a deep-tree underflow to the same value explicit scaling gives.

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::{BufferId, Flags, InstanceSpec, ScalingMode};
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

/// Three children; the CUDA child's device dies permanently mid-run.
/// Fault call 18 lands inside `update_partials` for this problem: creation
/// is call 1, the data upload is calls 2–14, the matrix kernel is 15, and
/// the seven partials launches are 16–22.
#[test]
fn partitioned_instance_survives_permanent_device_loss() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0, 1.0]).unwrap();
    assert_eq!(multi.device_count(), 3);

    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    assert_eq!(multi.eviction_count(), 1, "the dead child must be evicted");
    assert_eq!(
        multi.device_count(),
        2,
        "survivors absorb its pattern range"
    );
    let oracle = p.oracle();
    assert!(
        (lnl - oracle).abs() < 1e-6,
        "failover result {lnl} must match oracle {oracle}"
    );
}

/// A transient fault clears on retry: no eviction, full device count, and
/// the retry counter records the recovery.
#[test]
fn transient_fault_is_retried_not_evicted() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::KernelLaunch, true, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    assert_eq!(multi.eviction_count(), 0, "transient faults must not evict");
    assert_eq!(multi.device_count(), 2);
    assert!(multi.retry_counts()[0] >= 1, "the recovery must be counted");
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs {oracle}");
}

/// Even with every accelerator device dead at creation, the partitioned
/// instance degrades down the fallback chain and completes on the CPU.
#[test]
fn creation_falls_back_when_preferred_device_is_dead() {
    let mut faults = FaultDirectory::new();
    for spec in catalog::all() {
        faults.insert(
            spec.name,
            FaultPlan::new(1).with_fault(FaultKind::Allocation, false, Schedule::AtCall(1)),
        );
    }
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    // No requirements: the manager tries GPU factories first, every one
    // fails at creation, and it lands on a CPU implementation.
    let mut inst = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .expect("fallback chain must find a live implementation");
    assert!(
        !inst.details().implementation_name.starts_with("CUDA")
            && !inst.details().implementation_name.starts_with("OpenCL-GPU"),
        "accelerators are all dead, got {}",
        inst.details().implementation_name
    );
    let (lnl, oracle) = beagle::harness::verify(&p, inst.as_mut(), false);
    assert!((lnl - oracle).abs() < 1e-6);
}

/// Deep-tree underflow in single precision: the unscaled integration hits
/// −∞, automatic rescue re-runs the traversal with per-pattern rescaling,
/// and the result matches an explicitly scaled evaluation.
#[test]
fn numerical_rescue_recovers_deep_tree_underflow() {
    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 120,
        patterns: 300,
        categories: 4,
        seed: 13,
    });
    let manager = full_manager();
    let prefs = Flags::PRECISION_SINGLE;
    let reqs = Flags::PRECISION_SINGLE;

    // Prove the problem actually underflows: a bare (unwrapped) accelerator
    // instance without scaling cannot produce a finite likelihood.
    {
        use beagle::accel::CudaFactory;
        use beagle::core::manager::ImplementationFactory;
        let f = CudaFactory::new(catalog::quadro_p5000());
        let mut raw = f.create(&p.config(), prefs, reqs).unwrap();
        p.load(raw.as_mut());
        let ops = p.operations(false);
        raw.update_partials(&ops).unwrap();
        let unscaled = raw.integrate_root(
            BufferId(p.tree.root()),
            BufferId(0),
            BufferId(0),
            ScalingMode::None,
        );
        let underflowed = match &unscaled {
            Ok(v) => !v.is_finite(),
            Err(e) => matches!(e, beagle::core::BeagleError::NumericalFailure(_)),
        };
        assert!(
            underflowed,
            "the case must underflow without scaling: {unscaled:?}"
        );
    }

    // Managed instances are rescue-wrapped: the same unscaled evaluation
    // transparently recovers.
    let mut rescued_inst = InstanceSpec::with_config(p.config())
        .prefer(prefs)
        .require(reqs)
        .instantiate(&manager)
        .unwrap();
    p.load(rescued_inst.as_mut());
    let rescued = p.evaluate(rescued_inst.as_mut(), false);
    assert!(
        rescued.is_finite() && rescued < 0.0,
        "rescue must recover: {rescued}"
    );

    // And matches what a client doing manual scaling would have computed.
    let mut scaled_inst = InstanceSpec::with_config(p.config())
        .prefer(prefs)
        .require(reqs)
        .instantiate(&manager)
        .unwrap();
    p.load(scaled_inst.as_mut());
    let scaled = p.evaluate(scaled_inst.as_mut(), true);
    let rel = ((rescued - scaled) / scaled).abs();
    assert!(
        rel < 1e-5,
        "rescued {rescued} vs explicitly scaled {scaled}"
    );
}
