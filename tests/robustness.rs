//! Robustness end-to-end: deadline watchdogs cancelling hung devices,
//! per-resource circuit breakers steering creation and benchmarking, and
//! durable checkpoint/restore across manager lifetimes.
//!
//! The acceptance bar: a seeded device hang on one child of a partitioned
//! instance must complete the full workload bit-identically to a fault-free
//! run on the surviving layout, and a checkpoint written mid-run must
//! restore in a fresh manager to the identical likelihood.

use std::time::Duration;

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::{
    BeagleError, BeagleInstance, BreakerConfig, BreakerState, BufferId, Checkpoint, EventKind,
    Flags, InstanceSpec, Outcome, QueuedInstance, RetryPolicy, ScalingMode,
};
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

fn cuda_impl_name() -> String {
    format!("CUDA ({})", catalog::quadro_p5000().name)
}

/// A breaker configuration whose cooldown never elapses within a test, so
/// `Open` assertions cannot race the wall clock.
fn sticky_breakers() -> BreakerConfig {
    BreakerConfig {
        cooldown: Duration::from_secs(3600),
        ..BreakerConfig::default()
    }
}

/// Acceptance: the CUDA child wedges mid-traversal. The watchdog cancels
/// the call at the deadline, the timeout evicts the child, its breaker
/// opens, and the repartitioned run finishes bit-identical to a fault-free
/// run on the survivor layout.
#[test]
fn hung_device_is_cancelled_evicted_and_bit_exact() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::Hang, false, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    manager.set_breaker_config(sticky_breakers());
    let p = problem();
    let devices = [
        (Flags::INSTANCE_STATS, Flags::FRAMEWORK_CUDA),
        (
            Flags::INSTANCE_STATS,
            Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU,
        ),
        (Flags::INSTANCE_STATS, Flags::PROCESSOR_CPU),
    ];
    let spec = InstanceSpec::with_config(p.config())
        .with_deadline(Duration::from_millis(100))
        .with_retry_policy(RetryPolicy::default());
    let mut multi =
        PartitionedInstance::create_with_spec(&manager, &spec, &devices, &[1.0, 1.0, 1.0]).unwrap();
    assert_eq!(multi.device_count(), 3);

    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    assert_eq!(multi.eviction_count(), 1, "the hung child must be evicted");
    assert_eq!(
        multi.device_count(),
        2,
        "survivors absorb its pattern range"
    );

    // The watchdog cancellation was scored as a hard failure: the CUDA
    // resource's breaker is open and it is quarantined.
    let cuda = cuda_impl_name();
    assert_eq!(manager.health().state(cuda.as_str()), BreakerState::Open);
    assert!(!manager.health().available(cuda.as_str()));
    assert!(manager.health().counts(cuda.as_str()).timeouts >= 1);

    // The event journal narrates the rescue.
    let journal = multi.take_journal();
    assert!(
        journal.iter().any(|e| e.kind == EventKind::WatchdogTimeout),
        "watchdog cancellation must be journaled"
    );
    assert!(
        journal.iter().any(|e| e.kind == EventKind::BreakerOpen),
        "breaker transition must be journaled"
    );
    assert!(journal
        .iter()
        .any(|e| e.kind == EventKind::FailoverEviction));

    // Bit-exactness: a fault-free run on the survivor layout computes the
    // same partition ranges over the same deterministic kernels.
    let clean = full_manager();
    let survivors = [devices[1], devices[2]];
    let mut baseline =
        PartitionedInstance::create(&clean, &p.config(), &survivors, &[1.0, 1.0]).unwrap();
    p.load(&mut baseline);
    let expected = p.evaluate(&mut baseline, false);
    assert_eq!(
        lnl.to_bits(),
        expected.to_bits(),
        "failover result {lnl} must be bit-identical to fault-free {expected}"
    );
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs oracle {oracle}");
}

/// A stall shorter than the watchdog budget is not a fault: the call
/// completes late, nothing is retried or evicted, and the answer is right.
#[test]
fn stall_under_the_watchdog_budget_completes_late_but_correct() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(
            FaultKind::Stall(Duration::from_millis(1)),
            true,
            Schedule::AtCall(18),
        ),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    assert_eq!(
        multi.eviction_count(),
        0,
        "a survivable stall must not evict"
    );
    assert_eq!(
        multi.retry_counts()[0],
        0,
        "a survivable stall is not a fault"
    );
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs {oracle}");
}

/// The same stall against a tighter deadline is cancelled: the watchdog
/// turns it into a timeout, which goes straight to eviction (timeouts are
/// evictable but not retryable).
#[test]
fn stall_beyond_the_deadline_is_cancelled_and_evicted() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(
            FaultKind::Stall(Duration::from_millis(50)),
            true,
            Schedule::AtCall(18),
        ),
    );
    let manager = full_manager_with_faults(&faults);
    manager.set_breaker_config(sticky_breakers());
    let p = problem();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let spec = InstanceSpec::with_config(p.config()).with_deadline(Duration::from_millis(10));
    let mut multi =
        PartitionedInstance::create_with_spec(&manager, &spec, &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    assert_eq!(
        multi.eviction_count(),
        1,
        "the cancelled child must be evicted"
    );
    assert_eq!(multi.device_count(), 1);
    assert_eq!(multi.retry_counts(), &[0], "timeouts are not retried");
    assert!(manager.health().counts(cuda_impl_name().as_str()).timeouts >= 1);
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs {oracle}");
}

/// A hang on a single pinned instance with no explicit deadline is still
/// cancelled by the driver-default watchdog budget and classified as a
/// non-retryable timeout naming the budget.
#[test]
fn watchdog_timeout_is_classified_and_not_retryable() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::Hang, false, Schedule::AtCall(16)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let mut inst = InstanceSpec::with_config(p.config())
        .named(cuda_impl_name())
        .without_rescue()
        .instantiate(&manager)
        .unwrap();
    p.load(inst.as_mut());
    let err = inst.update_partials(&p.operations(false)).unwrap_err();
    assert!(
        matches!(err, BeagleError::Timeout { .. }),
        "a watchdog cancellation must surface as Timeout, got {err:?}"
    );
    assert!(!err.is_retryable(), "timeouts must not be blindly retried");
    assert!(
        err.to_string().contains("watchdog"),
        "the message should name the budget: {err}"
    );
}

/// An open breaker steers ranked creation away from the quarantined
/// implementation; after the cooldown the benchmark workload is the
/// half-open probe that closes it; while open, benchmarking skips it.
#[test]
fn open_breaker_steers_ranked_creation_and_benchmark_reprobes() {
    let manager = full_manager();
    let p = problem();
    let cuda = cuda_impl_name();

    // Healthy baseline: ranked creation picks the CUDA implementation.
    let inst = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .unwrap();
    assert!(
        inst.details().implementation_name.starts_with("CUDA"),
        "expected CUDA to rank first, got {}",
        inst.details().implementation_name
    );

    // A watchdog cancellation trips the breaker immediately.
    manager.set_breaker_config(sticky_breakers());
    manager.health().record(cuda.as_str(), Outcome::Timeout);
    assert_eq!(manager.health().state(cuda.as_str()), BreakerState::Open);

    // Ranked creation now skips the quarantined implementation...
    let inst = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .unwrap();
    assert!(
        !inst.details().implementation_name.starts_with("CUDA"),
        "quarantined implementation must be skipped, got {}",
        inst.details().implementation_name
    );
    // ...and benchmarking reports it as quarantined instead of probing it.
    let results = manager.benchmark_resources(&p.config(), Flags::NONE);
    let entry = results.iter().find(|r| r.implementation == cuda).unwrap();
    assert!(
        entry.error.as_deref().unwrap_or("").contains("quarantined"),
        "open breaker must block the benchmark probe: {:?}",
        entry.error
    );

    // Cooldown elapses: the breaker settles to half-open and the benchmark
    // workload is the probe that closes it.
    manager.set_breaker_config(BreakerConfig {
        cooldown: Duration::ZERO,
        ..BreakerConfig::default()
    });
    assert_eq!(
        manager.health().state(cuda.as_str()),
        BreakerState::HalfOpen
    );
    let results = manager.benchmark_resources(&p.config(), Flags::NONE);
    let entry = results.iter().find(|r| r.implementation == cuda).unwrap();
    assert!(
        entry.error.is_none(),
        "half-open resource must be re-probed: {:?}",
        entry.error
    );
    assert_eq!(manager.health().state(cuda.as_str()), BreakerState::Closed);
}

/// Health consultation is fail-open: with every implementation quarantined,
/// creation ignores the registry rather than refuse the request.
#[test]
fn health_consultation_fails_open_when_everything_is_quarantined() {
    let manager = full_manager();
    let p = problem();
    manager.set_breaker_config(sticky_breakers());
    for entry in manager.benchmark_resources(&p.config(), Flags::NONE) {
        manager
            .health()
            .record(entry.implementation.as_str(), Outcome::Permanent);
    }
    let mut inst = InstanceSpec::with_config(p.config())
        .instantiate(&manager)
        .expect("a wrong health signal must degrade ranking, never availability");
    let (lnl, oracle) = beagle::harness::verify(&p, inst.as_mut(), false);
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs {oracle}");
}

/// Acceptance: a checkpoint written mid-run (after the uploads, before any
/// integration) survives save → load in a *fresh* manager and restores to
/// the bit-identical likelihood. Corrupting the file is detected, not
/// replayed.
#[test]
fn checkpoint_restores_bit_exactly_in_a_fresh_manager() {
    let p = problem();
    let manager = full_manager();
    let mut inst = InstanceSpec::with_config(p.config())
        .named(cuda_impl_name())
        .checkpointed()
        .with_stats()
        .instantiate(&manager)
        .unwrap();
    p.load(inst.as_mut());
    let ckpt = inst
        .checkpoint()
        .expect("a checkpointed spec must snapshot");
    let journal = inst.take_journal();
    assert!(journal.iter().any(|e| e.kind == EventKind::CheckpointSaved));

    let lnl = p.evaluate(inst.as_mut(), false);

    let path =
        std::env::temp_dir().join(format!("beagle-robustness-ckpt-{}.txt", std::process::id()));
    ckpt.save(&path).unwrap();

    // A fresh manager stands in for a fresh process: nothing is shared with
    // the instance that wrote the snapshot.
    let fresh = full_manager();
    let loaded = Checkpoint::load(&path).unwrap();
    let mut restored = loaded.restore(&fresh).unwrap();
    let journal = restored.take_journal();
    assert!(journal
        .iter()
        .any(|e| e.kind == EventKind::CheckpointRestored));
    let lnl_restored = p.evaluate(&mut restored, false);
    assert_eq!(
        lnl.to_bits(),
        lnl_restored.to_bits(),
        "restored likelihood {lnl_restored} must be bit-identical to {lnl}"
    );

    // Tamper with one byte of the body: the content hash catches it.
    let text = std::fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("journal", "jOurnal", 1);
    assert_ne!(text, tampered, "fixture must actually change the file");
    std::fs::write(&path, tampered).unwrap();
    let err = Checkpoint::load(&path).unwrap_err();
    assert!(
        matches!(err, BeagleError::CheckpointCorrupt(_)),
        "a tampered snapshot must be rejected, got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}

/// Checkpointing composes with the operation queue: pending work is flushed
/// into the journal before the snapshot, so the restored instance computes
/// the same bits as the queued original.
#[test]
fn queued_checkpoint_flushes_pending_work_before_snapshot() {
    let p = problem();
    let manager = full_manager();
    let mut inst = InstanceSpec::with_config(p.config())
        .named(cuda_impl_name())
        .queued()
        .checkpointed()
        .instantiate(&manager)
        .unwrap();
    p.load(inst.as_mut());
    // Everything above is still queued; the snapshot must flush it first.
    let ckpt = inst
        .checkpoint()
        .expect("queued checkpoint must flush and snapshot");
    let lnl = p.evaluate(inst.as_mut(), false);

    let fresh = full_manager();
    let mut restored = ckpt.restore(&fresh).unwrap();
    let lnl_restored = p.evaluate(&mut restored, false);
    assert_eq!(
        lnl.to_bits(),
        lnl_restored.to_bits(),
        "{lnl} vs {lnl_restored}"
    );
}

/// A partitioned instance snapshots its replicated state journal; the
/// restored (re-ranked, possibly single-device) instance reproduces the
/// likelihood within summation-order tolerance.
#[test]
fn partitioned_checkpoint_restores_after_rerank() {
    let p = problem();
    let manager = full_manager();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);

    let ckpt = multi
        .checkpoint()
        .expect("partitioned instances snapshot their journal");
    let fresh = full_manager();
    let mut restored = ckpt.restore(&fresh).unwrap();
    let lnl_restored = p.evaluate(&mut restored, false);
    assert!(
        (lnl - lnl_restored).abs() < 1e-9,
        "restored {lnl_restored} must match partitioned {lnl} up to summation order"
    );
}

/// A watchdog cancellation mid-flush loses no work: the queue puts the
/// pending items back, and re-driving the flush replays them idempotently
/// to the correct answer.
#[test]
fn queue_preserves_pending_work_across_a_timeout() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::Hang, true, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let inner = InstanceSpec::with_config(p.config())
        .named(cuda_impl_name())
        .without_rescue()
        .instantiate(&manager)
        .unwrap();
    let mut q = QueuedInstance::new(inner);
    p.load(&mut q);
    q.update_partials(&p.operations(false)).unwrap();

    // The first flush hits the (transient) hang: the watchdog cancels it
    // and the error propagates — there is no failover layer to hide it.
    let root = BufferId(p.tree.root());
    let err = q
        .integrate_root(root, BufferId(0), BufferId(0), ScalingMode::None)
        .unwrap_err();
    assert!(matches!(err, BeagleError::Timeout { .. }), "got {err:?}");

    // Nothing was lost: the pending work was restored, and the retry
    // replays the whole batch to the oracle's answer.
    let lnl = q
        .integrate_root(root, BufferId(0), BufferId(0), ScalingMode::None)
        .expect("the retried flush must replay the preserved work");
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-6, "{lnl} vs {oracle}");
}
