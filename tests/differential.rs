//! Cross-backend differential harness for the deferred-execution layer.
//!
//! Every (implementation × precision × scaling) combination must produce the
//! SAME bits in queued mode (`COMPUTATION_ASYNCH`: operation queue +
//! dependency-level batching + eigen/matrix cache) as in eager mode: the
//! queue reorders nothing observable, level batching chooses the same chunk
//! boundaries, and cache hits re-install the exact bytes the back-end
//! produced on the miss. Post-failover instances (the `failover.rs`
//! fixtures) must also agree with the oracle in both modes.

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::QueuedInstance;
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn shared_fixtures() -> Vec<Problem> {
    vec![
        Problem::generate(&Scenario {
            model: ModelKind::Nucleotide,
            taxa: 9,
            patterns: 700,
            categories: 4,
            seed: 1,
        }),
        Problem::generate(&Scenario {
            model: ModelKind::AminoAcid,
            taxa: 7,
            patterns: 300,
            categories: 2,
            seed: 2,
        }),
        Problem::generate(&Scenario {
            model: ModelKind::Codon,
            taxa: 6,
            patterns: 150,
            categories: 1,
            seed: 3,
        }),
    ]
}

/// Evaluate `problem` on the named implementation in one queue mode and
/// return the log-likelihood. `None` if the factory refuses the config
/// (e.g. the SSE factory with a codon model).
fn run(
    manager: &ImplementationManager,
    problem: &Problem,
    name: &str,
    single: bool,
    asynch: bool,
    scaled: bool,
) -> Option<f64> {
    let mut flags = if single {
        Flags::PRECISION_SINGLE
    } else {
        Flags::PRECISION_DOUBLE
    };
    flags |= if asynch {
        Flags::COMPUTATION_ASYNCH
    } else {
        Flags::COMPUTATION_SYNCH
    };
    let mut inst = manager
        .create_instance_by_name(name, &problem.config(), flags)
        .ok()?;
    problem.load(inst.as_mut());
    Some(problem.evaluate(inst.as_mut(), scaled))
}

/// The tentpole guarantee: queued and eager execution are bit-for-bit
/// identical on every back-end, in both precisions, scaled and unscaled —
/// and both stay within the cross-backend tolerance of the oracle.
#[test]
fn queued_equals_eager_bit_for_bit_on_every_backend() {
    let manager = full_manager();
    for problem in shared_fixtures() {
        let oracle = problem.oracle();
        let mut compared = 0;
        for name in manager.implementation_names() {
            for single in [false, true] {
                for scaled in [false, true] {
                    let Some(eager) = run(&manager, &problem, &name, single, false, scaled) else {
                        continue;
                    };
                    let queued = run(&manager, &problem, &name, single, true, scaled)
                        .expect("queued mode must not change eligibility");
                    assert_eq!(
                        eager.to_bits(),
                        queued.to_bits(),
                        "{name} single={single} scaled={scaled}: eager {eager} != queued {queued}"
                    );
                    let rel = ((queued - oracle) / oracle).abs();
                    let tol = if single { 1e-4 } else { 1e-10 };
                    assert!(rel < tol, "{name} single={single}: {queued} vs {oracle}");
                    compared += 1;
                }
            }
        }
        assert!(
            compared >= 14,
            "expected most backends to run, got {compared}"
        );
    }
}

/// Repeated proposals (the MCMC access pattern): re-loading the same model
/// and branch lengths must hit the eigen cache, and the cached evaluation
/// must reproduce the first one exactly.
#[test]
fn eigen_cache_hits_on_repeated_proposals_without_changing_results() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 9,
        patterns: 700,
        categories: 4,
        seed: 1,
    });
    let manager = full_manager();
    let mut inst = manager
        .create_instance_by_name(
            "CUDA (NVIDIA Quadro P5000 (simulated))",
            &problem.config(),
            Flags::PRECISION_DOUBLE | Flags::COMPUTATION_ASYNCH,
        )
        .unwrap();
    problem.load(inst.as_mut());
    let first = problem.evaluate(inst.as_mut(), false);
    let after_first = inst.queue_stats().expect("queued instance exposes stats");
    assert!(
        after_first.eigen_cache_misses > 0,
        "first pass computes matrices"
    );
    assert_eq!(after_first.eigen_cache_hits, 0, "nothing to hit yet");

    // The "proposal" re-sends identical eigen data, rates, and branch
    // lengths — everything the cache keys on.
    problem.load(inst.as_mut());
    let second = problem.evaluate(inst.as_mut(), false);
    let after_second = inst.queue_stats().unwrap();
    assert!(
        after_second.eigen_cache_hits >= after_first.eigen_cache_misses,
        "repeat proposal must be served from the cache: {after_second:?}"
    );
    assert_eq!(
        after_second.eigen_cache_misses,
        after_first.eigen_cache_misses
    );
    assert_eq!(first.to_bits(), second.to_bits());
    assert!(after_second.batches_submitted > 0 && after_second.levels_submitted > 0);
}

/// The permanent-device-loss fixture from `failover.rs`, driven through the
/// operation queue: eviction and repartitioning must still happen under
/// deferred execution, and both queue modes must match the oracle.
#[test]
fn post_failover_instance_agrees_in_both_queue_modes() {
    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    });
    let oracle = p.oracle();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    for asynch in [false, true] {
        let faults = FaultDirectory::new().with_plan(
            catalog::quadro_p5000().name,
            FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(18)),
        );
        let manager = full_manager_with_faults(&faults);
        let multi =
            PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0, 1.0]).unwrap();
        let lnl = if asynch {
            let mut q = QueuedInstance::new(Box::new(multi));
            p.load(&mut q);
            let lnl = p.evaluate(&mut q, false);
            let stats = q.stats();
            assert!(stats.flushes > 0 && stats.ops_submitted > 0, "{stats:?}");
            lnl
        } else {
            let mut multi = multi;
            p.load(&mut multi);
            let lnl = p.evaluate(&mut multi, false);
            assert_eq!(multi.eviction_count(), 1, "the dead child must be evicted");
            lnl
        };
        assert!(
            (lnl - oracle).abs() < 1e-6,
            "asynch={asynch}: post-failover {lnl} vs oracle {oracle}"
        );
    }
}

/// The transient-fault fixture: a retried kernel launch must be invisible
/// to the final likelihood in either queue mode.
#[test]
fn transient_fault_recovery_agrees_in_both_queue_modes() {
    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    });
    let oracle = p.oracle();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    for asynch in [false, true] {
        let faults = FaultDirectory::new().with_plan(
            catalog::quadro_p5000().name,
            FaultPlan::new(7).with_fault(FaultKind::KernelLaunch, true, Schedule::AtCall(18)),
        );
        let manager = full_manager_with_faults(&faults);
        let multi =
            PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
        let mut inst: Box<dyn BeagleInstance> = if asynch {
            Box::new(QueuedInstance::new(Box::new(multi)))
        } else {
            Box::new(multi)
        };
        p.load(inst.as_mut());
        let lnl = p.evaluate(inst.as_mut(), false);
        assert!(
            (lnl - oracle).abs() < 1e-6,
            "asynch={asynch}: transient-fault result {lnl} vs oracle {oracle}"
        );
    }
}

/// Site log-likelihood read-back must also be bit-identical between modes
/// (reads force a flush; the flushed state must equal eager state).
#[test]
fn site_log_likelihoods_identical_between_modes() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 7,
        patterns: 200,
        categories: 2,
        seed: 4,
    });
    let manager = full_manager();
    for name in ["CPU-serial", "CPU-threadpool", "OpenCL-x86"] {
        let mut sites = Vec::new();
        for asynch in [false, true] {
            let mode = if asynch {
                Flags::COMPUTATION_ASYNCH
            } else {
                Flags::COMPUTATION_SYNCH
            };
            let mut inst = manager
                .create_instance_by_name(name, &problem.config(), Flags::PRECISION_DOUBLE | mode)
                .unwrap();
            problem.load(inst.as_mut());
            problem.evaluate(inst.as_mut(), false);
            sites.push(inst.get_site_log_likelihoods().unwrap());
        }
        let (eager, queued) = (&sites[0], &sites[1]);
        assert_eq!(eager.len(), queued.len());
        for (a, b) in eager.iter().zip(queued) {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: {a} != {b}");
        }
    }
}

/// Timeout-driven eviction must also be invisible to the queue layer: a
/// hung CUDA child is watchdog-cancelled and evicted *inside* a flush, the
/// replicated journal rebuilds the survivors, and the queued result matches
/// the eager result and the oracle in both modes.
#[test]
fn timeout_eviction_agrees_in_both_queue_modes() {
    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    });
    let oracle = p.oracle();
    let devices = [
        (Flags::NONE, Flags::FRAMEWORK_CUDA),
        (Flags::NONE, Flags::FRAMEWORK_OPENCL | Flags::PROCESSOR_CPU),
        (Flags::NONE, Flags::PROCESSOR_CPU),
    ];
    let mut results = Vec::new();
    for asynch in [false, true] {
        let faults = FaultDirectory::new().with_plan(
            catalog::quadro_p5000().name,
            FaultPlan::new(7).with_fault(FaultKind::Hang, false, Schedule::AtCall(18)),
        );
        let manager = full_manager_with_faults(&faults);
        let multi =
            PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0, 1.0]).unwrap();
        if asynch {
            let mut q = QueuedInstance::new(Box::new(multi));
            p.load(&mut q);
            let lnl = p.evaluate(&mut q, false);
            let stats = q.stats();
            assert!(stats.flushes > 0 && stats.ops_submitted > 0);
            results.push(lnl);
        } else {
            let mut multi = multi;
            p.load(&mut multi);
            let lnl = p.evaluate(&mut multi, false);
            assert_eq!(multi.eviction_count(), 1, "the hung child must be evicted");
            assert_eq!(multi.device_count(), 2);
            results.push(lnl);
        }
    }
    for (i, lnl) in results.iter().enumerate() {
        assert!(
            (lnl - oracle).abs() < 1e-6,
            "mode {i}: timeout-eviction result {lnl} vs oracle {oracle}"
        );
    }
}
