//! Workspace integration: every registered implementation must produce the
//! same likelihood for the same problem — the core guarantee of BEAGLE's
//! uniform API across heterogeneous hardware.

use beagle::harness::{full_manager, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn all_backends_agree(model: ModelKind, patterns: usize, categories: usize, seed: u64) {
    let problem = Problem::generate(&Scenario {
        model,
        taxa: 9,
        patterns,
        categories,
        seed,
    });
    let oracle = problem.oracle();
    let manager = full_manager();
    let mut tested = 0;
    for name in manager.implementation_names() {
        for single in [false, true] {
            let precision = if single {
                Flags::PRECISION_SINGLE
            } else {
                Flags::PRECISION_DOUBLE
            };
            let Ok(mut inst) = manager.create_instance_by_name(&name, &problem.config(), precision)
            else {
                continue; // e.g. SSE factory with a codon config
            };
            problem.load(inst.as_mut());
            let lnl = problem.evaluate(inst.as_mut(), single);
            let rel = ((lnl - oracle) / oracle).abs();
            let tol = if single { 1e-4 } else { 1e-10 };
            assert!(
                rel < tol,
                "{name} single={single} {model:?}: {lnl} vs oracle {oracle} (rel {rel:e})"
            );
            tested += 1;
        }
    }
    assert!(tested >= 14, "expected most backends to run, got {tested}");
}

#[test]
fn nucleotide_all_backends() {
    all_backends_agree(ModelKind::Nucleotide, 700, 4, 1);
}

#[test]
fn amino_acid_all_backends() {
    all_backends_agree(ModelKind::AminoAcid, 300, 2, 2);
}

#[test]
fn codon_all_backends() {
    all_backends_agree(ModelKind::Codon, 150, 1, 3);
}

#[test]
fn site_log_likelihoods_agree_between_cpu_and_gpu() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 7,
        patterns: 200,
        categories: 2,
        seed: 4,
    });
    let manager = full_manager();
    let mut cpu = manager
        .create_instance_by_name("CPU-serial", &problem.config(), Flags::PRECISION_DOUBLE)
        .unwrap();
    problem.load(cpu.as_mut());
    problem.evaluate(cpu.as_mut(), false);
    let cpu_sites = cpu.get_site_log_likelihoods().unwrap();

    let mut gpu = manager
        .create_instance_by_name(
            "CUDA (NVIDIA Quadro P5000 (simulated))",
            &problem.config(),
            Flags::PRECISION_DOUBLE,
        )
        .unwrap();
    problem.load(gpu.as_mut());
    problem.evaluate(gpu.as_mut(), false);
    let gpu_sites = gpu.get_site_log_likelihoods().unwrap();

    assert_eq!(cpu_sites.len(), gpu_sites.len());
    for (a, b) in cpu_sites.iter().zip(&gpu_sites) {
        assert!((a - b).abs() < 1e-10, "{a} vs {b}");
    }
}

#[test]
fn edge_derivatives_agree_cpu_vs_gpu() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 6,
        patterns: 120,
        categories: 2,
        seed: 6,
    });
    let manager = full_manager();
    let root = problem.tree.root();
    let child = problem.tree.node(root).children[0];
    let rest = problem.tree.node(root).children[1];
    let mut results = Vec::new();
    for name in [
        "CPU-serial",
        "CUDA (NVIDIA Quadro P5000 (simulated))",
        "OpenCL-x86",
    ] {
        let mut inst = manager
            .create_instance_by_name(name, &problem.config(), Flags::PRECISION_DOUBLE)
            .unwrap();
        problem.load(inst.as_mut());
        problem.evaluate(inst.as_mut(), false);
        let t = problem.tree.node(child).branch_length;
        // Scratch derivative slots: the root's matrix slot + the rest slot.
        inst.update_transition_derivatives(0, &[child], &[root], &[rest], &[t])
            .unwrap();
        // Parent = rest-side partials is not directly available at the root
        // edge, so use a weaker but exact check: identical triples across
        // back-ends for parent = the root buffer itself.
        let trip = inst
            .integrate_edge_derivatives(
                BufferId(root),
                BufferId(child),
                BufferId(child),
                BufferId(root),
                BufferId(rest),
                BufferId(0),
                BufferId(0),
                ScalingMode::None,
            )
            .unwrap();
        results.push(trip);
    }
    for other in &results[1..] {
        assert!((results[0].0 - other.0).abs() < 1e-9);
        assert!((results[0].1 - other.1).abs() < 1e-9);
        assert!((results[0].2 - other.2).abs() < 1e-9);
    }
}

#[test]
fn partials_readback_matches_across_backends() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 5,
        patterns: 50,
        categories: 1,
        seed: 5,
    });
    let manager = full_manager();
    let root = problem.tree.root();
    let mut bufs = Vec::new();
    for name in [
        "CPU-serial",
        "OpenCL-x86",
        "OpenCL-GPU (AMD Radeon R9 Nano (simulated))",
    ] {
        let mut inst = manager
            .create_instance_by_name(name, &problem.config(), Flags::PRECISION_DOUBLE)
            .unwrap();
        problem.load(inst.as_mut());
        problem.evaluate(inst.as_mut(), false);
        bufs.push(inst.get_partials(root).unwrap());
    }
    for other in &bufs[1..] {
        for (a, b) in bufs[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}
