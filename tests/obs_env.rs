//! `benchmark_resources` determinism, in its own test binary because it
//! sets the process-global `BEAGLE_FORCE_SCALAR` environment variable.
//!
//! Wall-clock times differ run to run, so the assertions target what the
//! design guarantees is stable: full factory coverage, modeled device
//! times (bit-identical under the roofline model), and eligibility errors.

use beagle::core::Flags;
use beagle::harness::{full_manager, ModelKind, Problem, Scenario};

#[test]
fn benchmark_resources_is_deterministic_where_it_promises_to_be() {
    // Pin the CPU dispatch path so both passes run identical kernels.
    std::env::set_var("BEAGLE_FORCE_SCALAR", "1");

    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 500,
        categories: 4,
        seed: 7,
    });
    let manager = full_manager();
    let a = manager.benchmark_resources(&p.config(), Flags::NONE);
    let b = manager.benchmark_resources(&p.config(), Flags::NONE);

    // Every registered factory appears exactly once, in both passes.
    assert_eq!(a.len(), manager.factory_count());
    assert_eq!(b.len(), a.len());
    let mut names_a: Vec<&str> = a.iter().map(|e| e.implementation.as_str()).collect();
    let mut names_b: Vec<&str> = b.iter().map(|e| e.implementation.as_str()).collect();
    names_a.sort_unstable();
    names_b.sort_unstable();
    assert_eq!(names_a, names_b);
    names_a.dedup();
    assert_eq!(names_a.len(), a.len(), "duplicate factory in ranking");
    for expected in [
        "CPU-serial",
        "CPU-SSE",
        "CUDA (NVIDIA Quadro P5000 (simulated))",
        "OpenCL-GPU (AMD Radeon R9 Nano (simulated))",
        "OpenCL-x86",
    ] {
        assert!(
            names_a.contains(&expected),
            "ranking is missing {expected}: {names_a:?}"
        );
    }

    // Modeled device times come from the roofline model, not the host
    // clock: bit-identical across passes, present exactly for simulated
    // GPUs, and ranked ahead of errored entries.
    for ea in &a {
        let eb = b
            .iter()
            .find(|e| e.implementation == ea.implementation)
            .expect("same factory set");
        assert_eq!(
            ea.modeled, eb.modeled,
            "{}: modeled time not deterministic",
            ea.implementation
        );
        assert_eq!(
            ea.error, eb.error,
            "{}: eligibility not deterministic",
            ea.implementation
        );
        let simulated = ea.implementation.contains("simulated");
        if ea.error.is_none() {
            assert_eq!(
                ea.modeled.is_some(),
                simulated,
                "{}: modeled time iff simulated device",
                ea.implementation
            );
            assert!(ea.throughput_gflops > 0.0, "{}", ea.implementation);
        }
    }
    let first_error = a.iter().position(|e| e.error.is_some()).unwrap_or(a.len());
    assert!(
        a[first_error..].iter().all(|e| e.error.is_some()),
        "errored entries must sort after measured ones"
    );
}
