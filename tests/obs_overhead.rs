//! Observability overhead guard, in its own test binary so no sibling test
//! thread perturbs the timing.
//!
//! The recorder costs a handful of counter updates per *kernel call* — not
//! per pattern — so an instrumented traversal must stay within 2% of an
//! uninstrumented one, and the numbers must be bit-identical.

use std::time::{Duration, Instant};

use beagle::core::{BeagleInstance, Flags, InstanceSpec, Recorder};
use beagle::harness::{full_manager, ModelKind, Problem, Scenario};

fn serial_instance(p: &Problem, stats: bool) -> Box<dyn BeagleInstance> {
    let spec = InstanceSpec::with_config(p.config())
        .prefer(Flags::PROCESSOR_CPU)
        .named("CPU-serial");
    let spec = if stats { spec.with_stats() } else { spec };
    let mut inst = spec.instantiate(&full_manager()).unwrap();
    // The timing loop repeats identical traversals; the memo layer would
    // skip them all and leave nothing to measure.
    inst.set_incremental(false);
    inst
}

fn traversals(p: &Problem, inst: &mut dyn BeagleInstance, reps: usize) -> Duration {
    let ops = p.operations(false);
    let start = Instant::now();
    for _ in 0..reps {
        inst.update_partials(&ops).unwrap();
    }
    start.elapsed()
}

#[test]
fn instrumentation_is_bit_exact_and_under_two_percent() {
    let p = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 12,
        patterns: 1500,
        categories: 4,
        seed: 42,
    });
    let mut off = serial_instance(&p, false);
    let mut on = serial_instance(&p, true);
    p.load(off.as_mut());
    p.load(on.as_mut());

    // The likelihood must not depend on instrumentation, bit for bit.
    let lnl_off = p.evaluate(off.as_mut(), false);
    let lnl_on = p.evaluate(on.as_mut(), false);
    assert_eq!(lnl_off.to_bits(), lnl_on.to_bits(), "{lnl_off} vs {lnl_on}");

    if !Recorder::new(true).is_enabled() {
        // obs-disabled build: the recorder is compiled out, so there is no
        // overhead to measure — and no statistics either.
        assert!(on.statistics().is_none());
        return;
    }
    assert!(on.statistics().expect("stats requested").total_calls() > 0);

    // Interleaved min-of-rounds: the minimum over several alternating
    // windows cancels scheduler noise that a single A/B pair would absorb.
    // A genuinely >2% recorder would fail every attempt; a co-tenant
    // stealing the core mid-window only fails some, so retry before
    // declaring a regression.
    let (reps, rounds, attempts) = (10, 5, 5);
    traversals(&p, off.as_mut(), 1);
    traversals(&p, on.as_mut(), 1);
    let mut worst = f64::INFINITY;
    for _ in 0..attempts {
        let mut best_off = Duration::MAX;
        let mut best_on = Duration::MAX;
        for _ in 0..rounds {
            best_off = best_off.min(traversals(&p, off.as_mut(), reps));
            best_on = best_on.min(traversals(&p, on.as_mut(), reps));
        }
        let overhead =
            (best_on.as_secs_f64() - best_off.as_secs_f64()) / best_off.as_secs_f64() * 100.0;
        if overhead < 2.0 {
            return;
        }
        worst = worst.min(overhead);
    }
    panic!("instrumentation overhead {worst:.3}% exceeds 2% in {attempts} attempts");
}
