//! Workspace integration: API-contract behaviour through trait objects —
//! validation errors, instance details, buffer roundtrips, clock semantics.

use beagle::harness::{full_manager, ModelKind, Problem, Scenario};
use beagle::prelude::*;

fn small_problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 5,
        patterns: 40,
        categories: 2,
        seed: 11,
    })
}

#[test]
fn out_of_range_indices_error_on_every_backend() {
    let problem = small_problem();
    let manager = full_manager();
    for name in manager.implementation_names() {
        let Ok(mut inst) = manager.create_instance_by_name(&name, &problem.config(), Flags::NONE)
        else {
            continue;
        };
        assert!(
            inst.set_tip_states(99, &[0; 40]).is_err(),
            "{name}: bad tip"
        );
        assert!(
            inst.set_pattern_weights(&[1.0; 3]).is_err(),
            "{name}: bad weights len"
        );
        assert!(
            inst.set_category_rates(&[1.0; 7]).is_err(),
            "{name}: bad rates len"
        );
        assert!(
            inst.get_transition_matrix(usize::MAX).is_err(),
            "{name}: bad matrix index"
        );
        // Reading a never-computed buffer fails.
        assert!(inst.get_partials(8).is_err(), "{name}: uncomputed partials");
        // Operations touching unwritten children fail.
        let bad_op = Operation::new(5, 3, 3, 4, 4);
        assert!(
            inst.update_partials(&[bad_op]).is_err(),
            "{name}: unwritten child"
        );
        // In-place operations are rejected.
        inst.set_tip_states(0, &[0u32; 40]).unwrap();
        let inplace = Operation::new(0, 0, 0, 1, 1);
        assert!(
            inst.update_partials(&[inplace]).is_err(),
            "{name}: in-place op"
        );
    }
}

#[test]
fn details_report_meaningful_metadata() {
    let problem = small_problem();
    let manager = full_manager();
    for name in manager.implementation_names() {
        let Ok(inst) = manager.create_instance_by_name(&name, &problem.config(), Flags::NONE)
        else {
            continue;
        };
        let d = inst.details();
        assert_eq!(d.implementation_name, name);
        assert!(!d.resource_name.is_empty());
        assert!(d.thread_count >= 1);
        assert!(
            d.flags
                .intersects(Flags::PRECISION_SINGLE | Flags::PRECISION_DOUBLE),
            "{name} must report a precision"
        );
    }
}

#[test]
fn transition_matrix_roundtrip() {
    let problem = small_problem();
    let manager = full_manager();
    let mut inst = manager
        .create_instance_by_name("CPU-serial", &problem.config(), Flags::PRECISION_DOUBLE)
        .unwrap();
    let len = problem.config().matrix_len();
    let m: Vec<f64> = (0..len).map(|i| (i % 10) as f64 * 0.1).collect();
    inst.set_transition_matrix(2, &m).unwrap();
    let got = inst.get_transition_matrix(2).unwrap();
    assert_eq!(m, got);
}

#[test]
fn set_partials_roundtrip_through_dyn_instance() {
    let problem = small_problem();
    let manager = full_manager();
    for name in ["CPU-threadpool", "OpenCL-x86"] {
        let mut inst = manager
            .create_instance_by_name(name, &problem.config(), Flags::PRECISION_DOUBLE)
            .unwrap();
        let len = problem.config().partials_len();
        let p: Vec<f64> = (0..len).map(|i| 1.0 / (1.0 + i as f64)).collect();
        inst.set_partials(6, &p).unwrap();
        let got = inst.get_partials(6).unwrap();
        for (a, b) in p.iter().zip(&got) {
            assert!((a - b).abs() < 1e-12, "{name}");
        }
    }
}

#[test]
fn simulated_clock_monotone_and_resettable() {
    let problem = Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 6,
        patterns: 400,
        categories: 2,
        seed: 12,
    });
    let manager = full_manager();
    let mut inst = manager
        .create_instance_by_name(
            "OpenCL-GPU (AMD FirePro S9170 (simulated))",
            &problem.config(),
            Flags::PRECISION_SINGLE,
        )
        .unwrap();
    // This test times two identical traversals; the incremental memo layer
    // would skip the repeat and stall the device clock.
    inst.set_incremental(false);
    problem.load(inst.as_mut());
    let t0 = inst.simulated_time().unwrap();
    problem.evaluate(inst.as_mut(), false);
    let t1 = inst.simulated_time().unwrap();
    assert!(t1 > t0, "evaluation must advance the device clock");
    problem.evaluate(inst.as_mut(), false);
    let t2 = inst.simulated_time().unwrap();
    assert!(t2 > t1);
    // A second traversal costs about the same as the first (same kernels).
    let first = (t1 - t0).as_secs_f64();
    let second = (t2 - t1).as_secs_f64();
    assert!((second / first - 1.0).abs() < 0.5, "{first} vs {second}");
    inst.reset_simulated_time();
    assert_eq!(inst.simulated_time().unwrap().as_nanos(), 0);
}

#[test]
fn invalid_configurations_rejected_everywhere() {
    let manager = full_manager();
    let mut cfg = InstanceConfig::for_tree(5, 40, 4, 2);
    cfg.pattern_count = 0;
    assert!(InstanceSpec::with_config(cfg)
        .instantiate(&manager)
        .is_err());
    let mut cfg = InstanceConfig::for_tree(5, 40, 4, 2);
    cfg.tip_count = 1;
    assert!(InstanceSpec::with_config(cfg)
        .instantiate(&manager)
        .is_err());
}

#[test]
fn wait_for_computation_is_safe_everywhere() {
    let problem = small_problem();
    let manager = full_manager();
    for name in manager.implementation_names() {
        if let Ok(mut inst) = manager.create_instance_by_name(&name, &problem.config(), Flags::NONE)
        {
            inst.wait_for_computation().unwrap();
        }
    }
}
