//! Observability subsystem: kernel statistics coverage and journal-event
//! ordering across a queued, fault-injected multi-device run.
//!
//! Every test is a no-op when the core crate is compiled with the
//! `obs-disabled` feature (the recorder is a ZST that never enables), so
//! the same test binary passes in both configurations.

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::PartitionedInstance;
use beagle::core::obs::{Event, EventKind, KernelClass, Recorder};
use beagle::core::{BeagleInstance, Flags, InstanceSpec};
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

fn obs_compiled_in() -> bool {
    Recorder::new(true).is_enabled()
}

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

/// Statistics are strictly opt-in: without `INSTANCE_STATS` (or
/// `with_stats()`), `statistics()` is `None` and the journal stays empty.
#[test]
fn statistics_are_opt_in() {
    let p = problem();
    let mut inst = InstanceSpec::with_config(p.config())
        .prefer(Flags::PROCESSOR_CPU)
        .instantiate(&full_manager())
        .unwrap();
    p.load(inst.as_mut());
    p.evaluate(inst.as_mut(), true);
    assert!(inst.statistics().is_none());
    assert!(inst.take_journal().is_empty());
}

/// A scaled evaluation on an instrumented CPU instance populates the
/// kernel classes that run: partials, transition matrices, rescale, and
/// root integration.
#[test]
fn statistics_cover_the_kernel_classes_that_ran() {
    if !obs_compiled_in() {
        return;
    }
    let p = problem();
    let mut inst = InstanceSpec::with_config(p.config())
        .prefer(Flags::PROCESSOR_CPU)
        .named("CPU-serial")
        .with_stats()
        .instantiate(&full_manager())
        .unwrap();
    p.load(inst.as_mut());
    p.evaluate(inst.as_mut(), true);

    let stats = inst.statistics().expect("stats were requested");
    for class in [
        KernelClass::PartialsSS,
        KernelClass::PartialsSP,
        KernelClass::PartialsPP,
        KernelClass::TransitionMatrices,
        KernelClass::Rescale,
        KernelClass::RootIntegrate,
    ] {
        let c = stats.counter(class);
        assert!(c.calls > 0, "{class:?} never ran");
        assert!(c.wall_nanos > 0, "{class:?} ran but recorded no time");
    }
    assert!(stats.total_calls() > 0);
    assert!(stats.total_wall_nanos() > 0);

    // The journal saw the traversal too, and draining it is one-shot.
    let journal = inst.take_journal();
    assert!(journal.iter().any(|e| e.kind == EventKind::OperationBegin));
    assert!(inst.take_journal().is_empty(), "take_journal drains");
}

/// The merged journal of a queued, fault-injected, multi-device run tells
/// the story in causal order: dispatch selection first, level batches
/// before the flush that submitted them, operation begin before end, and
/// the injected fault before the failover retry that recovered it.
#[test]
fn journal_orders_events_across_a_queued_failover_run() {
    if !obs_compiled_in() {
        return;
    }
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::KernelLaunch, true, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();
    let stats_async = Flags::INSTANCE_STATS | Flags::COMPUTATION_ASYNCH;
    let devices = [
        (stats_async, Flags::FRAMEWORK_CUDA),
        (stats_async, Flags::PROCESSOR_CPU),
    ];
    let mut multi =
        PartitionedInstance::create(&manager, &p.config(), &devices, &[1.0, 1.0]).unwrap();
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);
    assert_eq!(multi.eviction_count(), 0, "transient faults must not evict");
    assert!(multi.retry_counts()[0] >= 1, "the recovery must be counted");
    assert!((lnl - p.oracle()).abs() < 1e-6);

    let journal: Vec<Event> = multi.take_journal();
    assert!(!journal.is_empty());

    // Sequence numbers are strictly increasing after the merge.
    for w in journal.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "journal out of order: {:?} then {:?}",
            w[0],
            w[1]
        );
    }

    let pos = |kind: EventKind| journal.iter().position(|e| e.kind == kind);
    for kind in [
        EventKind::DispatchSelected,
        EventKind::OperationBegin,
        EventKind::OperationEnd,
        EventKind::LevelBatch,
        EventKind::QueueFlush,
        EventKind::FaultInjected,
        EventKind::FailoverRetry,
    ] {
        assert!(pos(kind).is_some(), "journal is missing {kind:?}");
    }

    // Dispatch paths are resolved at creation, before any work runs.
    assert_eq!(journal[0].kind, EventKind::DispatchSelected);
    assert!(pos(EventKind::DispatchSelected).unwrap() < pos(EventKind::OperationBegin).unwrap());

    // An operation can only end after it began, and a faulted launch ends
    // nothing — so at every prefix, ends never outnumber begins.
    let mut open = 0i64;
    for e in &journal {
        match e.kind {
            EventKind::OperationBegin => open += 1,
            EventKind::OperationEnd => {
                open -= 1;
                assert!(open >= 0, "OperationEnd without a begin at seq {}", e.seq);
            }
            _ => {}
        }
    }

    // Every level batch is submitted inside a flush: a QueueFlush record
    // must follow it.
    for (i, e) in journal.iter().enumerate() {
        if e.kind == EventKind::LevelBatch {
            assert!(
                journal[i + 1..]
                    .iter()
                    .any(|l| l.kind == EventKind::QueueFlush),
                "LevelBatch at seq {} has no subsequent QueueFlush",
                e.seq
            );
        }
    }

    // The fault fired before the failover machinery reacted to it.
    assert!(pos(EventKind::FaultInjected).unwrap() < pos(EventKind::FailoverRetry).unwrap());

    // Journal records serialize as JSON lines.
    for e in &journal {
        let line = e.to_json_line();
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSON line: {line}"
        );
    }

    // The drain is one-shot across the whole device tree.
    assert!(multi.take_journal().is_empty());
}
