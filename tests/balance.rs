//! Differential bit-exactness suite for the adaptive load balancer.
//!
//! The contract under test: splitting a problem across devices — at ANY
//! weighting the balancer might ever choose — must not change a single bit
//! of the log-likelihood relative to a single instance of the same
//! implementation. The partitioned layer guarantees this by recomputing the
//! total as one pattern-ordered f64 fold over the concatenated per-site
//! likelihoods (re-casting pattern weights through `f32` for
//! single-precision children), exactly as every back-end does internally.
//!
//! Covered here: backend × precision × scaling at a static skewed split,
//! the same matrix after explicit mid-run migrations (`rebalance_to`),
//! an *adaptive* rebalance triggered by an injected 4× device slowdown,
//! permanent-loss eviction with measured-throughput repartitioning over the
//! survivors, and checkpoint/restore of a rebalanced instance.

use beagle::accel::{catalog, FaultDirectory, FaultKind, FaultPlan, Schedule};
use beagle::core::multi::{ChildSelection, PartitionedInstance};
use beagle::core::{BalancerConfig, Checkpoint, Flags, InstanceSpec};
use beagle::harness::{full_manager, full_manager_with_faults, ModelKind, Problem, Scenario};

fn problem() -> Problem {
    Problem::generate(&Scenario {
        model: ModelKind::Nucleotide,
        taxa: 8,
        patterns: 900,
        categories: 4,
        seed: 77,
    })
}

fn cuda_impl_name() -> String {
    format!("CUDA ({})", catalog::quadro_p5000().name)
}

fn opencl_gpu_name(device: &beagle::accel::DeviceSpec) -> String {
    format!("OpenCL-GPU ({})", device.name)
}

/// Two children pinned to `name` at the given weights, same precision
/// requirement as the reference instance.
fn pinned_pair(
    manager: &std::sync::Arc<beagle::core::ImplementationManager>,
    p: &Problem,
    name: &str,
    require: Flags,
    weights: &[f64],
) -> PartitionedInstance {
    let selections = (0..weights.len())
        .map(|_| ChildSelection::named(name, Flags::NONE, require))
        .collect();
    PartitionedInstance::create_with_selections(
        manager,
        &InstanceSpec::with_config(p.config()).require(require),
        selections,
        weights,
    )
    .unwrap()
}

/// The core matrix: backend × precision × scaling. At each combination the
/// partitioned total must be bit-identical to the pinned single instance —
/// first at the static 1:3 split, then again after two explicit migrations
/// (the balancer's migration path, driven deterministically).
#[test]
fn partitioned_is_bit_exact_with_single_instance_at_every_weighting() {
    let p = problem();
    let manager = full_manager();
    let backends = [
        cuda_impl_name(),
        "OpenCL-x86".to_string(),
        "CPU-SSE".to_string(),
    ];
    for name in &backends {
        for single_precision in [false, true] {
            for scaled in [false, true] {
                let require = if single_precision {
                    Flags::PRECISION_SINGLE
                } else {
                    Flags::PRECISION_DOUBLE
                };
                let mut reference = InstanceSpec::with_config(p.config())
                    .named(name.clone())
                    .require(require)
                    .instantiate(&manager)
                    .unwrap();
                p.load(reference.as_mut());
                let want = p.evaluate(reference.as_mut(), scaled);

                let mut multi = pinned_pair(&manager, &p, name, require, &[1.0, 3.0]);
                p.load(&mut multi);
                let got = p.evaluate(&mut multi, scaled);
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "{name} single={single_precision} scaled={scaled}: \
                     static split {got} != single {want}"
                );

                // Migrate twice (fast-first, then slow-first) and re-check:
                // every intermediate weighting must stay bit-exact.
                for weights in [[5.0, 1.0], [1.0, 4.0]] {
                    assert!(
                        multi.rebalance_to(&weights).unwrap(),
                        "{weights:?} must migrate"
                    );
                    let after = p.evaluate(&mut multi, scaled);
                    assert_eq!(
                        want.to_bits(),
                        after.to_bits(),
                        "{name} single={single_precision} scaled={scaled} {weights:?}: \
                         rebalanced {after} != single {want}"
                    );
                }
                assert_eq!(multi.rebalance_count(), 2);
            }
        }
    }
}

/// An organic, measurement-driven rebalance: one of two same-implementation
/// GPU children is throttled 4× by an injected `Slowdown` fault. The EWMA
/// balancer must detect the skew, migrate patterns toward the healthy
/// device, and every batch before/during/after the migration must stay
/// bit-identical to an unpartitioned run.
#[test]
fn adaptive_rebalance_under_injected_slowdown_stays_bit_exact() {
    let slow = catalog::radeon_r9_nano();
    let fast = catalog::firepro_s9170();
    let faults = FaultDirectory::new().with_plan(
        slow.name,
        FaultPlan::new(7).with_fault(FaultKind::Slowdown(4.0), false, Schedule::EveryN(1)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();

    let mut reference = InstanceSpec::with_config(p.config())
        .named(opencl_gpu_name(&fast))
        .instantiate(&manager)
        .unwrap();
    p.load(reference.as_mut());
    let want = p.evaluate(reference.as_mut(), false);

    let selections = vec![
        ChildSelection::named(opencl_gpu_name(&fast), Flags::NONE, Flags::NONE),
        ChildSelection::named(opencl_gpu_name(&slow), Flags::NONE, Flags::NONE),
    ];
    let mut multi = PartitionedInstance::create_with_selections(
        &manager,
        &InstanceSpec::with_config(p.config()),
        selections,
        &[1.0, 1.0],
    )
    .unwrap();
    multi.enable_balancing(BalancerConfig {
        min_batches: 1,
        ..BalancerConfig::default()
    });
    p.load(&mut multi);

    for batch in 0..4 {
        let got = p.evaluate(&mut multi, false);
        assert_eq!(
            want.to_bits(),
            got.to_bits(),
            "batch {batch}: partitioned {got} != single {want}"
        );
    }
    assert!(
        multi.rebalance_count() >= 1,
        "a 4x throttled child must trigger at least one rebalance"
    );
    // The healthy device ends up owning the larger share.
    let (f0, f1) = multi.range(0);
    let (s0, s1) = multi.range(1);
    assert!(
        f1 - f0 > s1 - s0,
        "fast child range {f0}..{f1} must exceed slow child range {s0}..{s1}"
    );
}

/// Permanent device loss composes with balancing: the dead child is
/// evicted, the survivors are re-split by their *measured* throughputs, and
/// the result is still bit-identical to a single instance of the surviving
/// implementation.
#[test]
fn eviction_rebalances_survivors_and_stays_bit_exact() {
    let faults = FaultDirectory::new().with_plan(
        catalog::quadro_p5000().name,
        FaultPlan::new(7).with_fault(FaultKind::DeviceLost, false, Schedule::AtCall(18)),
    );
    let manager = full_manager_with_faults(&faults);
    let p = problem();

    let mut reference = InstanceSpec::with_config(p.config())
        .named("OpenCL-x86")
        .instantiate(&manager)
        .unwrap();
    p.load(reference.as_mut());
    let want = p.evaluate(reference.as_mut(), false);

    // CUDA child dies mid-run; the two OpenCL-x86 children absorb its range
    // at measured-throughput proportions.
    let selections = vec![
        ChildSelection::named(cuda_impl_name(), Flags::NONE, Flags::NONE),
        ChildSelection::named("OpenCL-x86", Flags::NONE, Flags::NONE),
        ChildSelection::named("OpenCL-x86", Flags::NONE, Flags::NONE),
    ];
    let mut multi = PartitionedInstance::create_with_selections(
        &manager,
        &InstanceSpec::with_config(p.config()),
        selections,
        &[1.0, 1.0, 1.0],
    )
    .unwrap();
    multi.enable_balancing(BalancerConfig {
        min_batches: 1,
        ..BalancerConfig::default()
    });
    p.load(&mut multi);
    let got = p.evaluate(&mut multi, false);

    assert_eq!(multi.eviction_count(), 1, "the dead child must be evicted");
    assert_eq!(multi.device_count(), 2);
    assert_eq!(
        want.to_bits(),
        got.to_bits(),
        "post-eviction {got} != single surviving implementation {want}"
    );

    // The survivors keep balancing: later batches stay exact too.
    let again = p.evaluate(&mut multi, false);
    assert_eq!(want.to_bits(), again.to_bits());
}

/// A checkpoint of a *rebalanced* instance restores bit-exactly: the
/// journal snapshot is layout-independent, so the weighting history the
/// balancer went through leaves no residue in the restored state.
#[test]
fn checkpoint_of_rebalanced_instance_restores_bit_exactly() {
    let p = problem();
    let manager = full_manager();
    // Both children pinned to the top-ranked implementation, so the
    // restore's fresh ranking lands on the same backend.
    let mut multi = pinned_pair(&manager, &p, &cuda_impl_name(), Flags::NONE, &[1.0, 1.0]);
    p.load(&mut multi);
    let _ = p.evaluate(&mut multi, false);
    assert!(multi.rebalance_to(&[3.0, 1.0]).unwrap());
    let lnl = p.evaluate(&mut multi, false);

    use beagle::core::BeagleInstance;
    let ckpt: Checkpoint = multi.checkpoint().expect("partitioned instances snapshot");
    let fresh = full_manager();
    let mut restored = ckpt.restore(&fresh).unwrap();
    assert!(
        restored.details().implementation_name.contains("CUDA"),
        "fresh ranking must pick the same backend the children were pinned to"
    );
    let lnl_restored = p.evaluate(&mut restored, false);
    assert_eq!(
        lnl.to_bits(),
        lnl_restored.to_bits(),
        "restored {lnl_restored} != rebalanced original {lnl}"
    );
}

/// The auto-partitioned front door: `InstanceSpec::auto_partitioned` seeds
/// children and weights from `benchmark_resources` and enables balancing.
/// Different backends may disagree in the last ulp, so this checks
/// structure plus oracle agreement rather than bits.
#[test]
fn auto_partitioned_spec_seeds_from_benchmarks() {
    let p = problem();
    let manager = full_manager();
    let mut multi = InstanceSpec::with_config(p.config())
        .auto_partitioned(2)
        .instantiate_partitioned(&manager)
        .unwrap();
    assert_eq!(multi.device_count(), 2);
    assert!(
        multi.balancer().is_some(),
        "auto-partitioned instances balance adaptively"
    );
    p.load(&mut multi);
    let lnl = p.evaluate(&mut multi, false);
    let oracle = p.oracle();
    assert!((lnl - oracle).abs() < 1e-7, "{lnl} vs {oracle}");
}
